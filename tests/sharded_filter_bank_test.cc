// Copyright (c) 2026 The plastream Authors. MIT license.
//
// Unit tests for ShardedFilterBank: shard determinism (per-key output is
// byte-identical for every shard count and mode), aggregation across
// shards, error propagation in both modes, and concurrent producers (this
// suite and sharded_pipeline_test are the TSan CI targets).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/filter_registry.h"
#include "stream/sharded_filter_bank.h"

namespace plastream {
namespace {

ShardedFilterBank::FilterFactory SwingFactory(double eps) {
  return [eps](std::string_view) -> Result<std::unique_ptr<Filter>> {
    FilterSpec spec;
    spec.family = "swing";
    spec.options = FilterOptions::Scalar(eps);
    return MakeFilter(spec);
  };
}

std::unique_ptr<ShardedFilterBank> MakeBank(size_t shards, bool threaded,
                                            double eps = 0.25) {
  ShardedFilterBank::Options options;
  options.shards = shards;
  options.threaded = threaded;
  options.queue_capacity = 16;
  auto bank = ShardedFilterBank::Create(SwingFactory(eps), options);
  EXPECT_TRUE(bank.ok()) << bank.status().ToString();
  return std::move(bank).value();
}

// A deterministic multi-key workload: ramps plus per-key phase wiggle.
std::vector<std::string> WorkloadKeys(size_t count) {
  std::vector<std::string> keys;
  for (size_t i = 0; i < count; ++i) {
    keys.push_back("host" + std::to_string(i) + ".cpu");
  }
  return keys;
}

double WorkloadValue(size_t key_index, int j) {
  return (j % 13) * 0.5 + static_cast<double>(key_index) + (j % 3) * 0.2;
}

void FeedWorkload(ShardedFilterBank& bank, const std::vector<std::string>& keys,
                  int points_per_key) {
  for (int j = 0; j < points_per_key; ++j) {
    for (size_t i = 0; i < keys.size(); ++i) {
      ASSERT_TRUE(
          bank.Append(keys[i], DataPoint::Scalar(j, WorkloadValue(i, j)))
              .ok());
    }
  }
}

TEST(ShardedFilterBankTest, CreateValidatesOptions) {
  ShardedFilterBank::Options zero_shards;
  zero_shards.shards = 0;
  EXPECT_EQ(ShardedFilterBank::Create(SwingFactory(1), zero_shards)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  ShardedFilterBank::Options zero_queue;
  zero_queue.threaded = true;
  zero_queue.queue_capacity = 0;
  EXPECT_EQ(
      ShardedFilterBank::Create(SwingFactory(1), zero_queue).status().code(),
      StatusCode::kInvalidArgument);

  EXPECT_EQ(ShardedFilterBank::Create(nullptr, ShardedFilterBank::Options{})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardedFilterBankTest, ShardAssignmentIsStableAndComplete) {
  const auto bank = MakeBank(8, false);
  EXPECT_EQ(bank->shard_count(), 8u);
  for (const std::string& key : WorkloadKeys(100)) {
    const size_t shard = bank->ShardOf(key);
    EXPECT_LT(shard, 8u);
    EXPECT_EQ(shard, bank->ShardOf(key));  // stable
  }
}

// The tentpole guarantee: the same key sequence through 1 shard and 8
// shards (and through worker threads) yields identical per-key segments.
TEST(ShardedFilterBankTest, PerKeySegmentsIdenticalAcrossShardCountsAndModes) {
  const auto keys = WorkloadKeys(13);
  const int points = 200;

  const auto baseline = MakeBank(1, false);
  FeedWorkload(*baseline, keys, points);
  ASSERT_TRUE(baseline->FinishAll().ok());
  std::map<std::string, std::vector<Segment>> expected;
  for (const std::string& key : keys) {
    expected[key] = baseline->TakeSegments(key).value();
    EXPECT_FALSE(expected[key].empty());
  }

  for (const size_t shards : {2u, 8u}) {
    for (const bool threaded : {false, true}) {
      auto bank = MakeBank(shards, threaded);
      FeedWorkload(*bank, keys, points);
      ASSERT_TRUE(bank->FinishAll().ok());
      for (const std::string& key : keys) {
        EXPECT_EQ(bank->TakeSegments(key).value(), expected[key])
            << "key=" << key << " shards=" << shards
            << " threaded=" << threaded;
      }
    }
  }
}

TEST(ShardedFilterBankTest, KeysMergeSortedAcrossShards) {
  const auto bank = MakeBank(4, false);
  const auto keys = WorkloadKeys(20);
  for (const std::string& key : keys) {
    ASSERT_TRUE(bank->Append(key, DataPoint::Scalar(0, 0)).ok());
  }
  const auto seen = bank->Keys();
  ASSERT_EQ(seen.size(), keys.size());
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  for (const std::string& key : keys) {
    EXPECT_TRUE(bank->Contains(key));
    EXPECT_NE(bank->GetFilter(key), nullptr);
  }
  EXPECT_FALSE(bank->Contains("absent"));
  EXPECT_EQ(bank->GetFilter("absent"), nullptr);
}

TEST(ShardedFilterBankTest, StatsAndCountersAggregateAcrossShards) {
  const auto keys = WorkloadKeys(10);
  const auto bank = MakeBank(4, false);
  FeedWorkload(*bank, keys, 50);
  ASSERT_TRUE(bank->FinishAll().ok());

  const auto stats = bank->Stats();
  EXPECT_EQ(stats.streams, keys.size());
  EXPECT_EQ(stats.points, keys.size() * 50);
  EXPECT_GE(stats.segments, keys.size());

  // Per-shard stats partition the totals.
  size_t streams = 0, points = 0;
  for (const auto& shard : bank->ShardStats()) {
    streams += shard.streams;
    points += shard.points;
  }
  EXPECT_EQ(streams, stats.streams);
  EXPECT_EQ(points, stats.points);

  // Every swing filter exposes unreported_points; the aggregate merges
  // them into one counter (value is workload-dependent, name is not).
  const auto counters = bank->AggregateCounters();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].name, "unreported_points");
}

TEST(ShardedFilterBankTest, PostAppendHookRunsPerPoint) {
  std::atomic<int> calls{0};
  ShardedFilterBank::Options options;
  options.shards = 4;
  options.post_append = [&calls](std::string_view) {
    ++calls;
    return Status::OK();
  };
  auto bank = ShardedFilterBank::Create(SwingFactory(0.5), options).value();
  const auto keys = WorkloadKeys(5);
  for (int j = 0; j < 10; ++j) {
    for (const std::string& key : keys) {
      ASSERT_TRUE(bank->Append(key, DataPoint::Scalar(j, 0)).ok());
    }
  }
  EXPECT_EQ(calls.load(), 50);
  ASSERT_TRUE(bank->FinishAll().ok());
}

TEST(ShardedFilterBankTest, LockedModeErrorsAreSynchronousNotSticky) {
  const auto bank = MakeBank(2, false);
  ASSERT_TRUE(bank->Append("a", DataPoint::Scalar(10, 0)).ok());
  EXPECT_EQ(bank->Append("a", DataPoint::Scalar(5, 0)).code(),
            StatusCode::kOutOfOrder);
  // Filter errors leave the stream usable (same contract as Filter), and
  // Flush has nothing to report: locked-mode errors are never deferred.
  EXPECT_TRUE(bank->Append("a", DataPoint::Scalar(11, 0)).ok());
  EXPECT_TRUE(bank->Flush().ok());
  ASSERT_TRUE(bank->FinishAll().ok());
}

TEST(ShardedFilterBankTest, ThreadedModeDefersErrorsUntilFlush) {
  ShardedFilterBank::Options options;
  options.shards = 1;  // deterministic: both points hit the same shard
  options.threaded = true;
  auto bank = ShardedFilterBank::Create(SwingFactory(1.0), options).value();
  ASSERT_TRUE(bank->Append("a", DataPoint::Scalar(10, 0)).ok());
  // Out-of-order point: accepted into the queue, fails in the worker.
  ASSERT_TRUE(bank->Append("a", DataPoint::Scalar(5, 0)).ok());
  EXPECT_EQ(bank->Flush().code(), StatusCode::kOutOfOrder);
  // The error is sticky: later appends to the shard report it.
  EXPECT_EQ(bank->Append("a", DataPoint::Scalar(11, 0)).code(),
            StatusCode::kOutOfOrder);
  EXPECT_EQ(bank->FinishAll().code(), StatusCode::kOutOfOrder);
}

// Regression: a producer blocked on a full ingest queue must wake when
// FinishAll stops the shard and report FailedPrecondition — not silently
// enqueue into a dead shard (which also left Flush waiting forever).
TEST(ShardedFilterBankTest, QueueFullAppendWakesOnFinishAll) {
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<int> hook_entered{0};
  ShardedFilterBank::Options options;
  options.shards = 1;
  options.threaded = true;
  options.queue_capacity = 1;
  options.post_append = [&](std::string_view) {
    ++hook_entered;
    released.wait();  // hold the worker so the queue stays full
    return Status::OK();
  };
  auto bank = ShardedFilterBank::Create(SwingFactory(1.0), options).value();

  ASSERT_TRUE(bank->Append("a", DataPoint::Scalar(0, 0)).ok());
  while (hook_entered.load() == 0) std::this_thread::yield();
  ASSERT_TRUE(bank->Append("a", DataPoint::Scalar(1, 0)).ok());  // fills queue

  Status blocked_status = Status::OK();
  std::thread blocked([&] {
    blocked_status = bank->Append("a", DataPoint::Scalar(2, 0));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  Status finish_status = Status::OK();
  std::thread finisher([&] { finish_status = bank->FinishAll(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  release.set_value();

  blocked.join();
  finisher.join();
  EXPECT_EQ(blocked_status.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(finish_status.ok()) << finish_status.ToString();
  EXPECT_TRUE(bank->Flush().ok());  // no stranded in_flight accounting
  EXPECT_EQ(bank->Stats().points, 2u);
}

TEST(ShardedFilterBankTest, AppendAfterFinishAllFails) {
  for (const bool threaded : {false, true}) {
    auto bank = MakeBank(2, threaded);
    ASSERT_TRUE(bank->Append("a", DataPoint::Scalar(0, 0)).ok());
    ASSERT_TRUE(bank->FinishAll().ok());
    ASSERT_TRUE(bank->FinishAll().ok());  // idempotent
    EXPECT_EQ(bank->Append("a", DataPoint::Scalar(1, 0)).code(),
              StatusCode::kFailedPrecondition);
  }
}

// Concurrent multi-producer ingest: P producers own disjoint key sets and
// hammer the bank simultaneously. Run under both modes; ThreadSanitizer
// (PLASTREAM_TSAN=ON in CI) checks the synchronization.
TEST(ShardedFilterBankTest, ConcurrentProducersDisjointKeys) {
  for (const bool threaded : {false, true}) {
    auto bank = MakeBank(8, threaded);
    constexpr int kProducers = 4;
    constexpr int kKeysPerProducer = 6;
    constexpr int kPoints = 300;
    std::vector<std::thread> producers;
    std::atomic<int> failures{0};
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&bank, &failures, p] {
        for (int j = 0; j < kPoints; ++j) {
          for (int k = 0; k < kKeysPerProducer; ++k) {
            const std::string key =
                "p" + std::to_string(p) + ".k" + std::to_string(k);
            if (!bank->Append(key, DataPoint::Scalar(j, (j % 11) * 0.3 + k))
                     .ok()) {
              ++failures;
            }
          }
        }
      });
    }
    for (auto& producer : producers) producer.join();
    EXPECT_EQ(failures.load(), 0);
    ASSERT_TRUE(bank->FinishAll().ok());
    const auto stats = bank->Stats();
    EXPECT_EQ(stats.streams,
              static_cast<size_t>(kProducers * kKeysPerProducer));
    EXPECT_EQ(stats.points,
              static_cast<size_t>(kProducers * kKeysPerProducer * kPoints));
  }
}

}  // namespace
}  // namespace plastream
