// Copyright (c) 2026 The plastream Authors. MIT license.
//
// Ingest-guard unit tests: policy spec parsing and formatting, the guard
// decision semantics (reorder, nan, gap, duplicate policies) against a
// real filter, Filter::Cut across every family, and the wiring through
// FilterBank, Pipeline::Builder::Ingest and the `[pipeline] ingest =`
// config key — including the Stats().ingest counters.

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/filter_registry.h"
#include "stream/filter_bank.h"
#include "stream/ingest_guard.h"
#include "stream/pipeline.h"

namespace plastream {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

std::unique_ptr<Filter> MakeScalarFilter(const std::string& spec) {
  return MakeFilter(spec).value();
}

// --- policy parsing ----------------------------------------------------------

TEST(IngestPolicyTest, DefaultIsPassThrough) {
  const IngestPolicy policy;
  EXPECT_TRUE(policy.pass_through());
  EXPECT_EQ(policy.Format(), "pass");
}

TEST(IngestPolicyTest, ParsesPass) {
  const auto policy = IngestPolicy::Parse("pass");
  ASSERT_TRUE(policy.ok());
  EXPECT_TRUE(policy.value().pass_through());
}

TEST(IngestPolicyTest, ParsesFullGuardSpec) {
  const auto policy =
      IngestPolicy::Parse("guard(reorder=16,nan=gap,max_dt=5.5,dup=first)");
  ASSERT_TRUE(policy.ok());
  EXPECT_FALSE(policy.value().pass_through());
  EXPECT_EQ(policy.value().reorder, 16u);
  EXPECT_EQ(policy.value().nan, NanPolicy::kGap);
  EXPECT_EQ(policy.value().dup, DupPolicy::kFirst);
  EXPECT_DOUBLE_EQ(policy.value().max_dt, 5.5);
}

TEST(IngestPolicyTest, FormatParseRoundTrips) {
  for (const char* text :
       {"pass", "guard(reorder=8)", "guard(dup=first,nan=skip)",
        "guard(dup=last,max_dt=2.5,nan=gap,reorder=4)"}) {
    const auto policy = IngestPolicy::Parse(text);
    ASSERT_TRUE(policy.ok()) << text;
    const auto reparsed = IngestPolicy::Parse(policy.value().Format());
    ASSERT_TRUE(reparsed.ok()) << policy.value().Format();
    EXPECT_EQ(policy.value(), reparsed.value()) << text;
    EXPECT_EQ(policy.value().Format(), reparsed.value().Format()) << text;
  }
}

TEST(IngestPolicyTest, RejectsBadSpecs) {
  // Unknown family, unknown parameter, bad values, eps on an ingest spec.
  for (const char* text :
       {"shield", "guard(window=4)", "guard(reorder=-1)", "guard(nan=maybe)",
        "guard(dup=sometimes)", "guard(max_dt=-2)", "guard(max_dt=nan)",
        "guard(eps=0.5)", "pass(reorder=4)"}) {
    const auto policy = IngestPolicy::Parse(text);
    EXPECT_FALSE(policy.ok()) << text;
    EXPECT_EQ(policy.status().code(), StatusCode::kInvalidArgument) << text;
  }
}

TEST(IngestPolicyTest, DupLastRequiresReorderBuffer) {
  const auto policy = IngestPolicy::Parse("guard(dup=last)");
  ASSERT_FALSE(policy.ok());
  EXPECT_EQ(policy.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(IngestPolicy::Parse("guard(dup=last,reorder=1)").ok());
}

// --- filter-level duplicate and non-finite behavior (pinned) -----------------

// Duplicate timestamps at a bare filter are always OutOfOrder, for every
// family, and the message says "duplicate" (distinguishing them from
// regressions); graceful handling lives exclusively in the guard.
TEST(FilterContractTest, DuplicateTimestampIsOutOfOrderForEveryFamily) {
  for (const char* family : {"cache", "linear", "swing", "slide", "kalman"}) {
    auto filter = MakeScalarFilter(std::string(family) + "(eps=0.5)");
    ASSERT_TRUE(filter->Append(DataPoint::Scalar(1.0, 1.0)).ok()) << family;
    const Status dup = filter->Append(DataPoint::Scalar(1.0, 2.0));
    EXPECT_EQ(dup.code(), StatusCode::kOutOfOrder) << family;
    EXPECT_NE(dup.message().find("duplicate"), std::string::npos)
        << family << ": " << dup.message();
    // The stream is still usable afterwards.
    EXPECT_TRUE(filter->Append(DataPoint::Scalar(2.0, 1.0)).ok()) << family;
  }
}

// Non-finite timestamps and values are InvalidArgument at Append for
// every family — never silently admitted into the approximation.
TEST(FilterContractTest, NonFiniteInputIsRejectedForEveryFamily) {
  for (const char* family : {"cache", "linear", "swing", "slide", "kalman"}) {
    auto filter = MakeScalarFilter(std::string(family) + "(eps=0.5)");
    for (const DataPoint& bad :
         {DataPoint::Scalar(kNaN, 1.0), DataPoint::Scalar(kInf, 1.0),
          DataPoint::Scalar(-kInf, 1.0), DataPoint::Scalar(1.0, kNaN),
          DataPoint::Scalar(1.0, kInf), DataPoint::Scalar(1.0, -kInf)}) {
      const Status st = filter->Append(bad);
      EXPECT_EQ(st.code(), StatusCode::kInvalidArgument)
          << family << " accepted t=" << bad.t << " x=" << bad.x[0];
    }
    // Rejections leave the ordering state untouched.
    EXPECT_TRUE(filter->Append(DataPoint::Scalar(1.0, 1.0)).ok()) << family;
    EXPECT_TRUE(filter->Append(DataPoint::Scalar(2.0, 2.0)).ok()) << family;
  }
}

// A multi-dimensional point with one NaN dimension is rejected whole.
TEST(FilterContractTest, NonFiniteRejectionCoversEveryDimension) {
  auto filter = MakeFilter("slide(eps=0.5,dims=3)").value();
  const Status st = filter->Append(DataPoint(1.0, {1.0, kNaN, 3.0}));
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

// --- Filter::Cut -------------------------------------------------------------

TEST(FilterCutTest, CutSplitsTheChainForEveryFamily) {
  for (const char* family : {"cache", "linear", "swing", "slide", "kalman"}) {
    auto filter = MakeScalarFilter(std::string(family) + "(eps=0.1)");
    for (double t = 1.0; t <= 5.0; t += 1.0) {
      ASSERT_TRUE(filter->Append(DataPoint::Scalar(t, 10.0 * t)).ok())
          << family;
    }
    ASSERT_TRUE(filter->Cut().ok()) << family;
    EXPECT_EQ(filter->cuts(), 1u) << family;
    for (double t = 6.0; t <= 10.0; t += 1.0) {
      ASSERT_TRUE(filter->Append(DataPoint::Scalar(t, -7.0 * t)).ok())
          << family;
    }
    ASSERT_TRUE(filter->Finish().ok()) << family;

    const std::vector<Segment> segments = filter->TakeSegments();
    ASSERT_FALSE(segments.empty()) << family;
    EXPECT_TRUE(ValidateSegmentChain(segments).ok()) << family;
    // Some segment boundary at the cut is disconnected: find the first
    // segment starting at or after t=6 and check it does not connect.
    bool found_break = false;
    for (const Segment& segment : segments) {
      if (segment.t_start >= 6.0 && !segment.connected_to_prev) {
        found_break = true;
      }
      // No segment may span the cut.
      EXPECT_FALSE(segment.t_start <= 5.0 && segment.t_end >= 6.0) << family;
    }
    EXPECT_TRUE(found_break) << family;
  }
}

TEST(FilterCutTest, CutOnFreshFilterIsANoOp) {
  auto filter = MakeScalarFilter("slide(eps=0.1)");
  EXPECT_TRUE(filter->Cut().ok());
  EXPECT_TRUE(filter->Append(DataPoint::Scalar(1.0, 1.0)).ok());
  EXPECT_TRUE(filter->Finish().ok());
  EXPECT_EQ(filter->TakeSegments().size(), 1u);
}

TEST(FilterCutTest, TimeOrderingIsEnforcedAcrossCuts) {
  auto filter = MakeScalarFilter("linear(eps=0.1)");
  ASSERT_TRUE(filter->Append(DataPoint::Scalar(1.0, 1.0)).ok());
  ASSERT_TRUE(filter->Append(DataPoint::Scalar(2.0, 2.0)).ok());
  ASSERT_TRUE(filter->Cut().ok());
  // A cut is not a time reset: going backwards is still an error.
  EXPECT_EQ(filter->Append(DataPoint::Scalar(1.5, 1.0)).code(),
            StatusCode::kOutOfOrder);
  EXPECT_EQ(filter->Append(DataPoint::Scalar(2.0, 1.0)).code(),
            StatusCode::kOutOfOrder);
  EXPECT_TRUE(filter->Append(DataPoint::Scalar(3.0, 1.0)).ok());
}

TEST(FilterCutTest, CutAfterFinishFails) {
  auto filter = MakeScalarFilter("cache(eps=0.1)");
  ASSERT_TRUE(filter->Append(DataPoint::Scalar(1.0, 1.0)).ok());
  ASSERT_TRUE(filter->Finish().ok());
  EXPECT_EQ(filter->Cut().code(), StatusCode::kFailedPrecondition);
}

// --- guard semantics against a real filter -----------------------------------

class GuardTest : public ::testing::Test {
 protected:
  void Attach(const std::string& policy_text) {
    filter_ = MakeScalarFilter("linear(eps=0.25)");
    guard_ = std::make_unique<IngestGuard>(
        IngestPolicy::Parse(policy_text).value(), filter_.get());
  }

  std::vector<Segment> Drain() {
    EXPECT_TRUE(guard_->Flush().ok());
    EXPECT_TRUE(filter_->Finish().ok());
    return filter_->TakeSegments();
  }

  std::unique_ptr<Filter> filter_;
  std::unique_ptr<IngestGuard> guard_;
};

TEST_F(GuardTest, ReorderBufferRestoresTimeOrder) {
  Attach("guard(reorder=4)");
  // 1, 2, 4, 5, 3: the 3 is two positions late, within the window.
  for (double t : {1.0, 2.0, 4.0, 5.0, 3.0}) {
    ASSERT_TRUE(guard_->Admit(DataPoint::Scalar(t, t)).ok()) << t;
  }
  EXPECT_EQ(guard_->stats().reordered, 1u);
  EXPECT_EQ(guard_->stats().late_dropped, 0u);
  const auto segments = Drain();
  ASSERT_FALSE(segments.empty());
  EXPECT_EQ(filter_->points_seen(), 5u);
  EXPECT_TRUE(ValidateSegmentChain(segments).ok());
}

TEST_F(GuardTest, PointsBeyondTheWindowAreDroppedAndCounted) {
  Attach("guard(reorder=2)");
  for (double t : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0}) {
    ASSERT_TRUE(guard_->Admit(DataPoint::Scalar(t, t)).ok());
  }
  // 1..4 have been released (buffer holds 5, 6); t=2.5 is under the
  // watermark and unplaceable.
  ASSERT_TRUE(guard_->Admit(DataPoint::Scalar(2.5, 99.0)).ok());
  EXPECT_EQ(guard_->stats().late_dropped, 1u);
  Drain();
  EXPECT_EQ(filter_->points_seen(), 6u);
}

TEST_F(GuardTest, NanRejectMatchesBareFilter) {
  Attach("guard(reorder=2)");
  const Status st = guard_->Admit(DataPoint::Scalar(1.0, kNaN));
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(GuardTest, NanSkipDropsAndCounts) {
  Attach("guard(nan=skip)");
  ASSERT_TRUE(guard_->Admit(DataPoint::Scalar(1.0, 1.0)).ok());
  ASSERT_TRUE(guard_->Admit(DataPoint::Scalar(2.0, kNaN)).ok());
  ASSERT_TRUE(guard_->Admit(DataPoint::Scalar(3.0, kInf)).ok());
  ASSERT_TRUE(guard_->Admit(DataPoint::Scalar(4.0, 4.0)).ok());
  EXPECT_EQ(guard_->stats().nan_skipped, 2u);
  Drain();
  EXPECT_EQ(filter_->points_seen(), 2u);
}

TEST_F(GuardTest, NanGapCutsTheChain) {
  Attach("guard(nan=gap)");
  ASSERT_TRUE(guard_->Admit(DataPoint::Scalar(1.0, 0.0)).ok());
  ASSERT_TRUE(guard_->Admit(DataPoint::Scalar(2.0, 10.0)).ok());
  ASSERT_TRUE(guard_->Admit(DataPoint::Scalar(2.5, kNaN)).ok());
  ASSERT_TRUE(guard_->Admit(DataPoint::Scalar(3.0, 0.0)).ok());
  ASSERT_TRUE(guard_->Admit(DataPoint::Scalar(4.0, -10.0)).ok());
  EXPECT_EQ(guard_->stats().nan_gaps, 1u);
  const auto segments = Drain();
  EXPECT_EQ(filter_->cuts(), 1u);
  // Nothing spans the hole: no segment covers both t=2 and t=3.
  for (const Segment& segment : segments) {
    EXPECT_FALSE(segment.t_start <= 2.0 && segment.t_end >= 3.0)
        << segment.ToString();
  }
}

TEST_F(GuardTest, MaxDtGapCutsTheChain) {
  Attach("guard(max_dt=2)");
  ASSERT_TRUE(guard_->Admit(DataPoint::Scalar(1.0, 1.0)).ok());
  ASSERT_TRUE(guard_->Admit(DataPoint::Scalar(2.0, 2.0)).ok());
  ASSERT_TRUE(guard_->Admit(DataPoint::Scalar(10.0, 3.0)).ok());  // 8s hole
  ASSERT_TRUE(guard_->Admit(DataPoint::Scalar(11.0, 4.0)).ok());
  EXPECT_EQ(guard_->stats().gaps_cut, 1u);
  const auto segments = Drain();
  EXPECT_EQ(filter_->points_seen(), 4u);
  for (const Segment& segment : segments) {
    EXPECT_FALSE(segment.t_start <= 2.0 && segment.t_end >= 10.0)
        << segment.ToString();
  }
}

TEST_F(GuardTest, DupErrorMatchesBareFilter) {
  Attach("guard(reorder=2)");
  ASSERT_TRUE(guard_->Admit(DataPoint::Scalar(1.0, 1.0)).ok());
  const Status dup = guard_->Admit(DataPoint::Scalar(1.0, 2.0));
  EXPECT_EQ(dup.code(), StatusCode::kOutOfOrder);
  EXPECT_NE(dup.message().find("duplicate"), std::string::npos);
}

TEST_F(GuardTest, DupFirstKeepsTheFirstValue) {
  Attach("guard(reorder=2,dup=first)");
  ASSERT_TRUE(guard_->Admit(DataPoint::Scalar(1.0, 5.0)).ok());
  ASSERT_TRUE(guard_->Admit(DataPoint::Scalar(1.0, 500.0)).ok());
  ASSERT_TRUE(guard_->Admit(DataPoint::Scalar(2.0, 5.0)).ok());
  EXPECT_EQ(guard_->stats().dups_resolved, 1u);
  const auto segments = Drain();
  ASSERT_FALSE(segments.empty());
  // The admitted value at t=1 is the first one.
  EXPECT_NEAR(segments.front().ValueAt(1.0, 0), 5.0, 0.25 + 1e-9);
}

TEST_F(GuardTest, DupFirstWithoutBufferAbsorbsRepeatOfPrevious) {
  Attach("guard(dup=first)");  // reorder=0
  ASSERT_TRUE(guard_->Admit(DataPoint::Scalar(1.0, 5.0)).ok());
  ASSERT_TRUE(guard_->Admit(DataPoint::Scalar(1.0, 500.0)).ok());
  ASSERT_TRUE(guard_->Admit(DataPoint::Scalar(2.0, 5.0)).ok());
  EXPECT_EQ(guard_->stats().dups_resolved, 1u);
  Drain();
  EXPECT_EQ(filter_->points_seen(), 2u);
}

TEST_F(GuardTest, DupLastReplacesWhileBuffered) {
  Attach("guard(reorder=2,dup=last)");
  ASSERT_TRUE(guard_->Admit(DataPoint::Scalar(1.0, 500.0)).ok());
  ASSERT_TRUE(guard_->Admit(DataPoint::Scalar(1.0, 5.0)).ok());  // replaces
  ASSERT_TRUE(guard_->Admit(DataPoint::Scalar(2.0, 5.0)).ok());
  EXPECT_EQ(guard_->stats().dups_resolved, 1u);
  const auto segments = Drain();
  ASSERT_FALSE(segments.empty());
  EXPECT_NEAR(segments.front().ValueAt(1.0, 0), 5.0, 0.25 + 1e-9);
}

TEST_F(GuardTest, DupLastOfAReleasedPointDegradesToLate) {
  Attach("guard(reorder=1,dup=last)");
  ASSERT_TRUE(guard_->Admit(DataPoint::Scalar(1.0, 1.0)).ok());
  ASSERT_TRUE(guard_->Admit(DataPoint::Scalar(2.0, 2.0)).ok());  // releases 1
  ASSERT_TRUE(guard_->Admit(DataPoint::Scalar(1.0, 99.0)).ok());
  EXPECT_EQ(guard_->stats().late_dropped, 1u);
  EXPECT_EQ(guard_->stats().dups_resolved, 0u);
  Drain();
  EXPECT_EQ(filter_->points_seen(), 2u);
}

TEST_F(GuardTest, NonFiniteTimestampIsAlwaysAnError) {
  Attach("guard(reorder=4,nan=skip)");
  EXPECT_EQ(guard_->Admit(DataPoint::Scalar(kNaN, 1.0)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(guard_->Admit(DataPoint::Scalar(kInf, 1.0)).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(GuardTest, DimensionMismatchIsAlwaysAnError) {
  Attach("guard(reorder=4,nan=skip)");
  EXPECT_EQ(guard_->Admit(DataPoint(1.0, {1.0, 2.0})).code(),
            StatusCode::kInvalidArgument);
}

// --- FilterBank / Pipeline / config wiring -----------------------------------

TEST(IngestWiringTest, FilterBankAppliesThePolicyPerStream) {
  FilterBank bank([](std::string_view) { return MakeFilter("linear(eps=0.25)"); },
                  IngestPolicy::Parse("guard(reorder=2,nan=skip)").value());
  // Out-of-order within the window on one key, a NaN on another.
  ASSERT_TRUE(bank.Append("a", DataPoint::Scalar(1.0, 1.0)).ok());
  ASSERT_TRUE(bank.Append("b", DataPoint::Scalar(1.0, 1.0)).ok());
  ASSERT_TRUE(bank.Append("a", DataPoint::Scalar(3.0, 3.0)).ok());
  ASSERT_TRUE(bank.Append("a", DataPoint::Scalar(2.0, 2.0)).ok());
  ASSERT_TRUE(bank.Append("b", DataPoint::Scalar(2.0, kNaN)).ok());
  ASSERT_TRUE(bank.FinishAll().ok());
  const IngestGuardStats stats = bank.IngestStats();
  EXPECT_EQ(stats.reordered, 1u);
  EXPECT_EQ(stats.nan_skipped, 1u);
  EXPECT_EQ(bank.Stats().points, 4u);
}

TEST(IngestWiringTest, PipelineIngestSpecFlowsThroughToStats) {
  auto pipeline = Pipeline::Builder()
                      .DefaultSpec("linear(eps=0.25)")
                      .Ingest("guard(reorder=4,nan=skip,dup=first)")
                      .Shards(2)
                      .Build();
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().message();
  EXPECT_EQ((*pipeline)->GetIngestPolicy().reorder, 4u);
  ASSERT_TRUE((*pipeline)->Append("k", 1.0, 1.0).ok());
  ASSERT_TRUE((*pipeline)->Append("k", 3.0, 3.0).ok());
  ASSERT_TRUE((*pipeline)->Append("k", 2.0, 2.0).ok());   // late, repaired
  ASSERT_TRUE((*pipeline)->Append("k", 2.0, 99.0).ok());  // dup, dropped
  ASSERT_TRUE((*pipeline)->Append("k", 4.0, kNaN).ok());  // skipped
  ASSERT_TRUE((*pipeline)->Finish().ok());
  const auto stats = (*pipeline)->Stats();
  EXPECT_EQ(stats.points, 3u);
  EXPECT_EQ(stats.ingest.reordered, 1u);
  EXPECT_EQ(stats.ingest.dups_resolved, 1u);
  EXPECT_EQ(stats.ingest.nan_skipped, 1u);
}

TEST(IngestWiringTest, DefaultPipelineIsPassThrough) {
  auto pipeline =
      Pipeline::Builder().DefaultSpec("linear(eps=0.25)").Build();
  ASSERT_TRUE(pipeline.ok());
  EXPECT_TRUE((*pipeline)->GetIngestPolicy().pass_through());
  // Bare-filter semantics: duplicates error.
  ASSERT_TRUE((*pipeline)->Append("k", 1.0, 1.0).ok());
  EXPECT_EQ((*pipeline)->Append("k", 1.0, 2.0).code(),
            StatusCode::kOutOfOrder);
}

TEST(IngestWiringTest, BadIngestSpecFailsAtBuild) {
  auto pipeline = Pipeline::Builder()
                      .DefaultSpec("linear(eps=0.25)")
                      .Ingest("guard(dup=last)")  // needs reorder >= 1
                      .Build();
  ASSERT_FALSE(pipeline.ok());
  EXPECT_EQ(pipeline.status().code(), StatusCode::kInvalidArgument);
}

TEST(IngestWiringTest, ConfigFileIngestKeyIsApplied) {
  auto pipeline = Pipeline::Builder()
                      .FromConfigString(
                          "* = linear(eps=0.25)\n"
                          "[pipeline]\n"
                          "ingest = guard(reorder=8,nan=gap)\n"
                          "shards = 2\n")
                      .Build();
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().message();
  EXPECT_EQ((*pipeline)->GetIngestPolicy().reorder, 8u);
  EXPECT_EQ((*pipeline)->GetIngestPolicy().nan, NanPolicy::kGap);
}

TEST(IngestWiringTest, ConfigFileBadIngestSpecCarriesLineContext) {
  auto pipeline = Pipeline::Builder()
                      .FromConfigString(
                          "* = linear(eps=0.25)\n"
                          "[pipeline]\n"
                          "ingest = shield(up=1)\n",
                          "test.conf")
                      .Build();
  ASSERT_FALSE(pipeline.ok());
  EXPECT_NE(pipeline.status().message().find("test.conf:3"),
            std::string::npos)
      << pipeline.status().message();
}

}  // namespace
}  // namespace plastream
