// Copyright (c) 2026 The plastream Authors. MIT license.
//
// Unit and integration tests for the stream transport: codec, channel,
// transmitter and receiver, including full filter -> wire -> reconstruction
// round trips.

#include <vector>

#include <gtest/gtest.h>

#include "core/slide_filter.h"
#include "core/swing_filter.h"
#include "datagen/random_walk.h"
#include "eval/metrics.h"
#include "stream/channel.h"
#include "stream/codec.h"
#include "stream/receiver.h"
#include "stream/transmitter.h"
#include "stream/wire_codec.h"

namespace plastream {
namespace {

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

TEST(CodecTest, RoundTripSegmentPoint) {
  WireRecord record;
  record.type = WireRecordType::kSegmentPoint;
  record.t = 123.456;
  record.x = {1.0, -2.0, 3.5};
  const auto frame = EncodeWireRecord(record);
  EXPECT_EQ(frame.size(),
            EncodedWireRecordSize(record.type, record.x.size()));
  const auto decoded = DecodeWireRecord(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, record);
}

TEST(CodecTest, RoundTripProvisionalLineWithSlopes) {
  WireRecord record;
  record.type = WireRecordType::kProvisionalLine;
  record.t = -7.0;
  record.x = {0.5};
  record.slope = {2.25};
  const auto frame = EncodeWireRecord(record);
  const auto decoded = DecodeWireRecord(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, record);
}

TEST(CodecTest, DetectsFlippedBit) {
  WireRecord record;
  record.type = WireRecordType::kSegmentBreak;
  record.t = 1.0;
  record.x = {2.0};
  auto frame = EncodeWireRecord(record);
  for (size_t offset = 0; offset < frame.size(); ++offset) {
    auto corrupted = frame;
    corrupted[offset] ^= 0x40;
    const auto decoded = DecodeWireRecord(corrupted);
    EXPECT_FALSE(decoded.ok()) << "offset " << offset;
  }
}

TEST(CodecTest, RejectsTruncatedFrame) {
  WireRecord record;
  record.type = WireRecordType::kSegmentPoint;
  record.t = 1.0;
  record.x = {2.0};
  auto frame = EncodeWireRecord(record);
  frame.pop_back();
  EXPECT_EQ(DecodeWireRecord(frame).status().code(), StatusCode::kCorruption);
  EXPECT_EQ(DecodeWireRecord(std::vector<uint8_t>{}).status().code(),
            StatusCode::kCorruption);
}

TEST(CodecTest, RejectsUnknownType) {
  WireRecord record;
  record.type = WireRecordType::kSegmentPoint;
  record.t = 1.0;
  record.x = {2.0};
  auto frame = EncodeWireRecord(record);
  frame[0] = 9;  // invalid tag
  EXPECT_EQ(DecodeWireRecord(frame).status().code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// Channel
// ---------------------------------------------------------------------------

TEST(ChannelTest, FifoOrderAndAccounting) {
  Channel channel;
  channel.Push({1, 2, 3});
  channel.Push({4, 5});
  EXPECT_EQ(channel.queued(), 2u);
  EXPECT_EQ(channel.frames_sent(), 2u);
  EXPECT_EQ(channel.bytes_sent(), 5u);
  EXPECT_EQ(channel.Pop()->size(), 3u);
  EXPECT_EQ(channel.Pop()->size(), 2u);
  EXPECT_FALSE(channel.Pop().has_value());
  // Statistics survive draining.
  EXPECT_EQ(channel.bytes_sent(), 5u);
}

TEST(ChannelTest, CorruptLastFrame) {
  Channel channel;
  EXPECT_FALSE(channel.CorruptLastFrame(0));
  channel.Push({0x00, 0x01});
  EXPECT_FALSE(channel.CorruptLastFrame(5));
  EXPECT_TRUE(channel.CorruptLastFrame(0, 0xFF));
  EXPECT_EQ((*channel.Pop())[0], 0xFF);
}

TEST(ChannelTest, CorruptFrameTargetsAnyQueuedFrame) {
  Channel channel;
  EXPECT_FALSE(channel.CorruptFrame(0, 0));
  channel.Push({0x10, 0x11});
  channel.Push({0x20, 0x21});
  channel.Push({0x30, 0x31});
  // Out-of-range index or offset: untouched, reported.
  EXPECT_FALSE(channel.CorruptFrame(3, 0));
  EXPECT_FALSE(channel.CorruptFrame(1, 2));
  // Index 0 is the oldest queued frame; masks XOR into the byte.
  EXPECT_TRUE(channel.CorruptFrame(0, 1, 0x0F));
  EXPECT_TRUE(channel.CorruptFrame(1, 0));  // default mask 0xFF
  EXPECT_EQ(*channel.Pop(), (std::vector<uint8_t>{0x10, 0x1E}));
  EXPECT_EQ(*channel.Pop(), (std::vector<uint8_t>{0xDF, 0x21}));
  EXPECT_EQ(*channel.Pop(), (std::vector<uint8_t>{0x30, 0x31}));
  // After draining, indices are gone.
  EXPECT_FALSE(channel.CorruptFrame(0, 0));
}

// ---------------------------------------------------------------------------
// Transmitter -> Receiver round trips
// ---------------------------------------------------------------------------

Signal MakeWalk(size_t n, uint64_t seed) {
  RandomWalkOptions o;
  o.count = n;
  o.max_delta = 2.0;
  o.seed = seed;
  return *GenerateRandomWalk(o);
}

TEST(StreamRoundTripTest, SlideFilterSegmentsSurviveTheWire) {
  const Signal signal = MakeWalk(3000, 21);
  Channel channel;
  Transmitter tx(&channel);
  auto filter = SlideFilter::Create(FilterOptions::Scalar(0.75),
                                    SlideHullMode::kConvexHull, &tx)
                    .value();
  Receiver rx;
  for (const DataPoint& p : signal.points) {
    ASSERT_TRUE(filter->Append(p).ok());
    ASSERT_TRUE(rx.Poll(&channel).ok());  // interleaved polling
  }
  ASSERT_TRUE(filter->Finish().ok());
  ASSERT_TRUE(rx.Poll(&channel).ok());
  ASSERT_TRUE(rx.FinishStream().ok());

  // A sinked filter hands everything to its sink; a sink-less shadow run
  // over the same signal yields the reference segments (deterministic).
  auto shadow = SlideFilter::Create(FilterOptions::Scalar(0.75),
                                    SlideHullMode::kConvexHull)
                    .value();
  for (const DataPoint& p : signal.points) {
    ASSERT_TRUE(shadow->Append(p).ok());
  }
  ASSERT_TRUE(shadow->Finish().ok());
  const auto local = shadow->TakeSegments();
  ASSERT_EQ(rx.segments().size(), local.size());
  for (size_t k = 0; k < local.size(); ++k) {
    EXPECT_EQ(rx.segments()[k].connected_to_prev, local[k].connected_to_prev);
    EXPECT_DOUBLE_EQ(rx.segments()[k].t_start, local[k].t_start);
    EXPECT_DOUBLE_EQ(rx.segments()[k].t_end, local[k].t_end);
    EXPECT_DOUBLE_EQ(rx.segments()[k].x_start[0], local[k].x_start[0]);
    EXPECT_DOUBLE_EQ(rx.segments()[k].x_end[0], local[k].x_end[0]);
  }
  // Wire records match the recording-count accounting exactly.
  EXPECT_EQ(tx.records_sent(),
            CountRecordings(local, RecordingCostModel::kPiecewiseLinear));
  EXPECT_EQ(rx.records_received(), tx.records_sent());
}

TEST(StreamRoundTripTest, ReceiverReconstructionHonorsPrecision) {
  const Signal signal = MakeWalk(2000, 22);
  const double eps = 0.5;
  Channel channel;
  Transmitter tx(&channel);
  auto filter =
      SwingFilter::Create(FilterOptions::Scalar(eps), &tx).value();
  for (const DataPoint& p : signal.points) ASSERT_TRUE(filter->Append(p).ok());
  ASSERT_TRUE(filter->Finish().ok());
  Receiver rx;
  ASSERT_TRUE(rx.Poll(&channel).ok());
  ASSERT_TRUE(rx.FinishStream().ok());
  const auto approx = rx.Reconstruction();
  ASSERT_TRUE(approx.ok());
  const std::vector<double> epsilon{eps};
  EXPECT_TRUE(VerifyPrecision(signal, *approx, epsilon).ok());
}

TEST(StreamRoundTripTest, PointSegmentSurvivesTheWire) {
  Channel channel;
  Transmitter tx(&channel);
  auto filter =
      SlideFilter::Create(FilterOptions::Scalar(1.0),
                          SlideHullMode::kConvexHull, &tx)
          .value();
  ASSERT_TRUE(filter->Append(DataPoint::Scalar(5, 9)).ok());
  ASSERT_TRUE(filter->Finish().ok());
  Receiver rx;
  ASSERT_TRUE(rx.Poll(&channel).ok());
  ASSERT_TRUE(rx.FinishStream().ok());
  ASSERT_EQ(rx.segments().size(), 1u);
  EXPECT_TRUE(rx.segments()[0].IsPoint());
  EXPECT_DOUBLE_EQ(rx.segments()[0].x_start[0], 9.0);
}

TEST(StreamRoundTripTest, BorrowedCodecDrivesTransmitterAndReceiver) {
  // The non-default transport wiring: one codec instance, borrowed by both
  // ends of the stream (encode and decode state are independent).
  const Signal signal = MakeWalk(2500, 27);
  Channel channel;
  auto codec = MakeWireCodec("batch(n=16)").value();
  Transmitter tx(&channel, codec.get());
  Receiver rx(codec.get());
  auto filter = SlideFilter::Create(FilterOptions::Scalar(0.6),
                                    SlideHullMode::kConvexHull, &tx)
                    .value();
  for (const DataPoint& p : signal.points) {
    ASSERT_TRUE(filter->Append(p).ok());
    ASSERT_TRUE(rx.Poll(&channel).ok());  // interleaved polling
  }
  ASSERT_TRUE(filter->Finish().ok());
  ASSERT_TRUE(tx.Flush().ok());  // emit the partial batch
  ASSERT_TRUE(rx.Poll(&channel).ok());
  ASSERT_TRUE(rx.FinishStream().ok());
  EXPECT_EQ(rx.records_received(), tx.records_sent());
  auto shadow = SlideFilter::Create(FilterOptions::Scalar(0.6),
                                    SlideHullMode::kConvexHull)
                    .value();
  for (const DataPoint& p : signal.points) {
    ASSERT_TRUE(shadow->Append(p).ok());
  }
  ASSERT_TRUE(shadow->Finish().ok());
  EXPECT_EQ(rx.segments(), shadow->TakeSegments());
  EXPECT_TRUE(tx.status().ok());
}

TEST(StreamRoundTripTest, ReceiverDetectsCorruptedFrame) {
  Channel channel;
  Transmitter tx(&channel);
  auto filter =
      SwingFilter::Create(FilterOptions::Scalar(0.1), &tx).value();
  const Signal signal = MakeWalk(200, 23);
  for (const DataPoint& p : signal.points) ASSERT_TRUE(filter->Append(p).ok());
  ASSERT_TRUE(filter->Finish().ok());
  ASSERT_GT(channel.queued(), 0u);
  ASSERT_TRUE(channel.CorruptLastFrame(4, 0x80));
  Receiver rx;
  EXPECT_EQ(rx.Poll(&channel).code(), StatusCode::kCorruption);
}

TEST(StreamRoundTripTest, SegmentEndWithoutStartIsCorruption) {
  Channel channel;
  WireRecord record;
  record.type = WireRecordType::kSegmentPoint;
  record.t = 0.0;
  record.x = {1.0};
  channel.Push(EncodeWireRecord(record));
  Receiver rx;
  EXPECT_EQ(rx.Poll(&channel).code(), StatusCode::kCorruption);
}

TEST(StreamRoundTripTest, CoverageAdvancesWithSegments) {
  Channel channel;
  Transmitter tx(&channel);
  auto filter =
      SwingFilter::Create(FilterOptions::Scalar(0.01), &tx).value();
  Receiver rx;
  for (int j = 0; j < 50; ++j) {
    ASSERT_TRUE(
        filter->Append(DataPoint::Scalar(j, (j % 5) * 2.0)).ok());
  }
  ASSERT_TRUE(rx.Poll(&channel).ok());
  EXPECT_GT(rx.coverage_t(), 0.0);
  EXPECT_LT(rx.coverage_t(), 50.0);
}

}  // namespace
}  // namespace plastream
