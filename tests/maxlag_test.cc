// Copyright (c) 2026 The plastream Authors. MIT license.
//
// Tests for the m_max_lag bound (paper Sections 3.3 / 4.3): the transmitter
// must never run more than max_lag points ahead of the receiver's
// knowledge, the ε guarantee must survive freezing, and compression should
// degrade gracefully as the bound tightens.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/reconstruction.h"
#include "core/slide_filter.h"
#include "core/swing_filter.h"
#include "datagen/random_walk.h"
#include "datagen/sea_surface.h"
#include "eval/metrics.h"

namespace plastream {
namespace {

Signal SmoothWalk(size_t n, uint64_t seed) {
  RandomWalkOptions o;
  o.count = n;
  o.decrease_probability = 0.35;
  o.max_delta = 0.4;  // gentle: long filtering intervals without a bound
  o.seed = seed;
  return *GenerateRandomWalk(o);
}

template <typename FilterT>
void ExpectLagBounded(FilterT* filter, const Signal& signal, size_t max_lag) {
  size_t worst = 0;
  for (const DataPoint& p : signal.points) {
    ASSERT_TRUE(filter->Append(p).ok());
    worst = std::max(worst, filter->unreported_points());
  }
  ASSERT_TRUE(filter->Finish().ok());
  EXPECT_LE(worst, max_lag) << "lag bound exceeded";
}

TEST(MaxLagTest, SwingLagStaysBounded) {
  const Signal signal = SmoothWalk(5000, 41);
  FilterOptions options = FilterOptions::Scalar(5.0);
  options.max_lag = 16;
  auto filter = SwingFilter::Create(options).value();
  ExpectLagBounded(filter.get(), signal, 16);
}

TEST(MaxLagTest, SlideLagStaysBounded) {
  const Signal signal = SmoothWalk(5000, 42);
  FilterOptions options = FilterOptions::Scalar(5.0);
  options.max_lag = 16;
  auto filter = SlideFilter::Create(options).value();
  ExpectLagBounded(filter.get(), signal, 16);
}

TEST(MaxLagTest, WithoutBoundLagGrows) {
  const Signal signal = SmoothWalk(5000, 43);
  auto filter = SwingFilter::Create(FilterOptions::Scalar(5.0)).value();
  size_t worst = 0;
  for (const DataPoint& p : signal.points) {
    ASSERT_TRUE(filter->Append(p).ok());
    worst = std::max(worst, filter->unreported_points());
  }
  ASSERT_TRUE(filter->Finish().ok());
  EXPECT_GT(worst, 64u);  // the wide band would buffer long intervals
}

TEST(MaxLagTest, SwingPrecisionSurvivesFreezing) {
  const Signal signal = SmoothWalk(4000, 44);
  for (const size_t max_lag : {4u, 8u, 32u, 128u}) {
    FilterOptions options = FilterOptions::Scalar(1.0);
    options.max_lag = max_lag;
    auto filter = SwingFilter::Create(options).value();
    for (const DataPoint& p : signal.points) {
      ASSERT_TRUE(filter->Append(p).ok());
    }
    ASSERT_TRUE(filter->Finish().ok());
    const auto approx =
        PiecewiseLinearFunction::Make(filter->TakeSegments());
    ASSERT_TRUE(approx.ok());
    EXPECT_TRUE(
        VerifyPrecision(signal, *approx, options.epsilon).ok())
        << "max_lag " << max_lag;
  }
}

TEST(MaxLagTest, SlidePrecisionSurvivesFreezing) {
  const Signal walk = SmoothWalk(4000, 45);
  const Signal sst = *GenerateSeaSurfaceTemperature({});
  for (const Signal* signal : {&walk, &sst}) {
    for (const size_t max_lag : {4u, 8u, 32u, 128u}) {
      FilterOptions options =
          FilterOptions::Scalar(signal->Range(0) * 0.02);
      options.max_lag = max_lag;
      auto filter = SlideFilter::Create(options).value();
      for (const DataPoint& p : signal->points) {
        ASSERT_TRUE(filter->Append(p).ok());
      }
      ASSERT_TRUE(filter->Finish().ok());
      const auto segments = filter->TakeSegments();
      ASSERT_TRUE(ValidateSegmentChain(segments).ok()) << "lag " << max_lag;
      const auto approx = PiecewiseLinearFunction::Make(segments);
      ASSERT_TRUE(approx.ok());
      EXPECT_TRUE(
          VerifyPrecision(*signal, *approx, options.epsilon).ok())
          << "max_lag " << max_lag;
    }
  }
}

TEST(MaxLagTest, FreezingChargesExtraRecordings) {
  const Signal signal = SmoothWalk(3000, 46);
  FilterOptions unbounded = FilterOptions::Scalar(5.0);
  FilterOptions bounded = unbounded;
  bounded.max_lag = 8;

  auto free_filter = SwingFilter::Create(unbounded).value();
  auto lag_filter = SwingFilter::Create(bounded).value();
  for (const DataPoint& p : signal.points) {
    ASSERT_TRUE(free_filter->Append(p).ok());
    ASSERT_TRUE(lag_filter->Append(p).ok());
  }
  ASSERT_TRUE(free_filter->Finish().ok());
  ASSERT_TRUE(lag_filter->Finish().ok());
  EXPECT_EQ(free_filter->extra_recordings(), 0u);
  EXPECT_GT(lag_filter->extra_recordings(), 0u);
}

TEST(MaxLagTest, TighterBoundNeverImprovesCompression) {
  const Signal signal = SmoothWalk(4000, 47);
  double prev_recordings = 0.0;
  for (const size_t max_lag : {0u, 256u, 32u, 8u}) {  // loosest to tightest
    FilterOptions options = FilterOptions::Scalar(2.0);
    options.max_lag = max_lag;
    auto filter = SwingFilter::Create(options).value();
    for (const DataPoint& p : signal.points) {
      ASSERT_TRUE(filter->Append(p).ok());
    }
    ASSERT_TRUE(filter->Finish().ok());
    const auto segments = filter->TakeSegments();
    const double recordings =
        static_cast<double>(CountRecordings(
            segments, RecordingCostModel::kPiecewiseLinear,
            filter->extra_recordings()));
    if (prev_recordings > 0.0) {
      EXPECT_GE(recordings, prev_recordings * 0.95)
          << "max_lag " << max_lag;
    }
    prev_recordings = recordings;
  }
}

TEST(MaxLagTest, FrozenIntervalEndpointsLieOnCommittedLine) {
  // Capture provisional lines via a sink and check the eventually-emitted
  // segment end lies on the committed line (extension property the
  // receiver relies on).
  class CapturingSink : public SegmentSink {
   public:
    void OnSegment(const Segment& segment) override {
      segments.push_back(segment);
    }
    void OnProvisionalLine(const ProvisionalLine& line) override {
      lines.push_back(line);
    }
    std::vector<Segment> segments;
    std::vector<ProvisionalLine> lines;
  };

  const Signal signal = SmoothWalk(2000, 48);
  FilterOptions options = FilterOptions::Scalar(5.0);
  options.max_lag = 12;
  CapturingSink sink;
  auto filter = SwingFilter::Create(options, &sink).value();
  for (const DataPoint& p : signal.points) {
    ASSERT_TRUE(filter->Append(p).ok());
  }
  ASSERT_TRUE(filter->Finish().ok());
  ASSERT_GT(sink.lines.size(), 0u);

  for (const ProvisionalLine& line : sink.lines) {
    // Find the first segment ending at or after the commit anchor whose
    // start is the anchor: swing commits lines through the segment start.
    bool matched = false;
    for (const Segment& seg : sink.segments) {
      if (seg.t_start == line.t && seg.x_start[0] == line.x[0]) {
        const double dt = seg.t_end - seg.t_start;
        EXPECT_NEAR(seg.x_end[0], line.x[0] + line.slope[0] * dt, 1e-9);
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched) << "no segment matches provisional anchor";
  }
}

}  // namespace
}  // namespace plastream
