// Copyright (c) 2026 The plastream Authors. MIT license.
//
// Crash-recovery semantics of the file storage backend and
// SegmentArchiveReader: a torn write (truncated or bit-flipped tail
// record) loses at most the last record; everything before it stays
// queryable; reopening for append physically truncates the tail and
// continues the chain — including a delta chain whose compact forms
// depend on the recovered state.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/random_walk.h"
#include "plastream.h"

namespace plastream {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "plastream_recovery_" + name + ".plar";
}

Signal Walk(uint64_t seed) {
  RandomWalkOptions o;
  o.count = 800;
  o.max_delta = 1.0;
  o.x0 = 30.0;
  o.seed = seed;
  return *GenerateRandomWalk(o);
}

// Writes a two-stream archive and returns its path.
std::string WriteArchive(const std::string& name, const char* codec) {
  const std::string path = TempPath(name);
  std::remove(path.c_str());
  auto pipeline = Pipeline::Builder()
                      .DefaultSpec("slide(eps=0.4)")
                      .Storage("file(path=" + path + ",codec=" + codec + ")")
                      .Build()
                      .value();
  const Signal a = Walk(21);
  const Signal b = Walk(22);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(pipeline->Append("a", a.points[i]).ok());
    EXPECT_TRUE(pipeline->Append("b", b.points[i]).ok());
  }
  EXPECT_TRUE(pipeline->Finish().ok());
  return path;
}

uint64_t FileSize(const std::string& path) {
  return static_cast<uint64_t>(std::filesystem::file_size(path));
}

void FlipByte(const std::string& path, uint64_t offset, uint8_t mask) {
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(file, nullptr);
  ASSERT_EQ(std::fseek(file, static_cast<long>(offset), SEEK_SET), 0);
  const int byte = std::fgetc(file);
  ASSERT_NE(byte, EOF);
  ASSERT_EQ(std::fseek(file, static_cast<long>(offset), SEEK_SET), 0);
  ASSERT_NE(std::fputc(byte ^ mask, file), EOF);
  std::fclose(file);
}

class RecoveryTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RecoveryTest, TruncatedTailLosesAtMostTheLastRecord) {
  const std::string path = WriteArchive(
      std::string("trunc_") + GetParam(), GetParam());
  auto clean = SegmentArchiveReader::Open(path);
  ASSERT_TRUE(clean.ok());
  ASSERT_FALSE((*clean)->torn_tail());
  const size_t clean_segments = (*clean)->segment_count();
  const size_t clean_records = (*clean)->record_count();

  // Chop into the middle of the last record: a torn write.
  std::filesystem::resize_file(path, FileSize(path) - 3);
  auto torn = SegmentArchiveReader::Open(path);
  ASSERT_TRUE(torn.ok());
  EXPECT_TRUE((*torn)->torn_tail());
  EXPECT_EQ((*torn)->record_count(), clean_records - 1);
  EXPECT_GE((*torn)->segment_count(), clean_segments - 1);
  EXPECT_GT((*torn)->truncated_bytes(), 0u);
  // Everything before the tear is still queryable.
  const SegmentStore* store = (*torn)->Store("a");
  ASSERT_NE(store, nullptr);
  EXPECT_TRUE((*torn)->ValueAt("a", store->t_min(), 0).ok());
  std::remove(path.c_str());
}

TEST_P(RecoveryTest, BitFlippedTailRecordIsDropped) {
  const std::string path = WriteArchive(
      std::string("flip_") + GetParam(), GetParam());
  auto clean = SegmentArchiveReader::Open(path);
  ASSERT_TRUE(clean.ok());
  const size_t clean_records = (*clean)->record_count();
  const uint64_t valid = (*clean)->valid_bytes();
  ASSERT_EQ(valid, FileSize(path));

  // Flip one payload bit inside the last record; its CRC32C must catch it.
  FlipByte(path, FileSize(path) - 6, 0x40);
  auto torn = SegmentArchiveReader::Open(path);
  ASSERT_TRUE(torn.ok());
  EXPECT_TRUE((*torn)->torn_tail());
  EXPECT_EQ((*torn)->record_count(), clean_records - 1);
  EXPECT_EQ((*torn)->torn_reason(), "record checksum mismatch");
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Codecs, RecoveryTest,
                         ::testing::Values("frame", "delta"));

TEST(RecoveryTest, BitFlippedLengthFieldTearsTheTail) {
  const std::string path = WriteArchive("length_flip", "delta");
  auto clean = SegmentArchiveReader::Open(path);
  ASSERT_TRUE(clean.ok());
  const size_t clean_records = (*clean)->record_count();
  // The last record starts at valid_bytes - (its size); locate its length
  // prefix by scanning: easier — flip a high bit of the length prefix of
  // the final record, which lives 8 bytes before its payload's end. We
  // find the record start by re-reading the clean reader's accounting.
  const uint64_t file_size = FileSize(path);
  // Flip the high length byte of the last record's 4-byte prefix. The
  // last record spans [start, file_size); its payload length L satisfies
  // start + 4 + L + 4 == file_size. Corrupting the length makes the
  // record exceed the file, which must tear, not crash.
  // Find `start` by replaying the record sizes is overkill: flipping the
  // most significant byte of ANY length prefix makes that record
  // overrun. Use the first record after the header.
  (void)file_size;
  FlipByte(path, 12 + 3, 0x7F);  // header is 12 bytes; length is LE
  auto torn = SegmentArchiveReader::Open(path);
  ASSERT_TRUE(torn.ok());
  EXPECT_TRUE((*torn)->torn_tail());
  EXPECT_EQ((*torn)->torn_reason(), "record length exceeds the file");
  EXPECT_LT((*torn)->record_count(), clean_records);
  std::remove(path.c_str());
}

TEST(RecoveryTest, MidFileCorruptionKeepsThePrefix) {
  const std::string path = WriteArchive("midfile", "delta");
  auto clean = SegmentArchiveReader::Open(path);
  ASSERT_TRUE(clean.ok());
  const size_t clean_records = (*clean)->record_count();
  ASSERT_GT(clean_records, 10u);

  FlipByte(path, FileSize(path) / 2, 0x10);
  auto torn = SegmentArchiveReader::Open(path);
  ASSERT_TRUE(torn.ok());
  EXPECT_TRUE((*torn)->torn_tail());
  EXPECT_LT((*torn)->record_count(), clean_records);
  EXPECT_GT((*torn)->valid_bytes(), 12u);
  std::remove(path.c_str());
}

TEST(RecoveryTest, HeaderDamageIsCorruptionNotATear) {
  const std::string path = WriteArchive("header", "delta");
  FlipByte(path, 2, 0xFF);  // inside the magic
  EXPECT_EQ(SegmentArchiveReader::Open(path).status().code(),
            StatusCode::kCorruption);
  // The file backend refuses to clobber a file it cannot recognize.
  EXPECT_EQ(Pipeline::Builder()
                .DefaultSpec("cache(eps=1)")
                .Storage("file(path=" + path + ")")
                .Build()
                .status()
                .code(),
            StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(RecoveryTest, EmptyAndHeaderOnlyFiles) {
  const std::string path = TempPath("empty");
  std::remove(path.c_str());
  // A zero-byte file is not an archive...
  { std::fclose(std::fopen(path.c_str(), "wb")); }
  EXPECT_EQ(SegmentArchiveReader::Open(path).status().code(),
            StatusCode::kCorruption);
  // ...but the file backend treats it like a fresh archive.
  {
    auto pipeline = Pipeline::Builder()
                        .DefaultSpec("cache(eps=1)")
                        .Storage("file(path=" + path + ")")
                        .Build()
                        .value();
    ASSERT_TRUE(pipeline->Finish().ok());
  }
  // Now it is a header-only archive: zero streams, no tear.
  auto reader = SegmentArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->stream_count(), 0u);
  EXPECT_EQ((*reader)->segment_count(), 0u);
  EXPECT_FALSE((*reader)->torn_tail());
  std::remove(path.c_str());
}

TEST(RecoveryTest, AbsurdStreamDimensionalityTearsInsteadOfCrashing) {
  // A CRC-valid stream-open record declaring a multi-terabyte
  // dimensionality must tear the tail, not feed a resize().
  const std::string path = TempPath("huge_dims");
  std::remove(path.c_str());
  {
    std::FILE* file = std::fopen(path.c_str(), "wb");
    ASSERT_NE(file, nullptr);
    const auto header = EncodeArchiveHeader(ArchiveSegmentCodec::kDelta);
    std::fwrite(header.data(), 1, header.size(), file);
    const auto payload =
        EncodeStreamOpenPayload(0, "k", uint64_t{1} << 61);
    const auto record = FrameArchiveRecord(payload);
    std::fwrite(record.data(), 1, record.size(), file);
    std::fclose(file);
  }
  auto reader = SegmentArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE((*reader)->torn_tail());
  EXPECT_EQ((*reader)->stream_count(), 0u);
  EXPECT_EQ((*reader)->torn_reason(), "stream-open record malformed");
  std::remove(path.c_str());
}

TEST(RecoveryTest, MissingFileIsIOError) {
  EXPECT_EQ(SegmentArchiveReader::Open(TempPath("does_not_exist"))
                .status()
                .code(),
            StatusCode::kIOError);
}

// The full crash loop: tear the tail, reopen for append (which truncates
// the file), stream more data, and verify the final archive is one valid
// chain — the delta codec's compact forms must survive the recovered
// chain state.
TEST(RecoveryTest, ReopenAfterTornWriteTruncatesAndContinues) {
  for (const char* codec : {"frame", "delta"}) {
    const std::string path = WriteArchive(
        std::string("continue_") + codec, codec);
    auto clean = SegmentArchiveReader::Open(path);
    ASSERT_TRUE(clean.ok());
    const uint64_t clean_size = FileSize(path);

    // Tear the tail mid-record.
    std::filesystem::resize_file(path, clean_size - 5);
    const uint64_t last_t = [&] {
      auto torn = SegmentArchiveReader::Open(path);
      EXPECT_TRUE(torn.ok());
      double t = 0.0;
      for (const std::string& key : (*torn)->Keys()) {
        t = std::max(t, (*torn)->Store(key)->t_max());
      }
      return static_cast<uint64_t>(t) + 1;
    }();

    const std::string spec =
        "file(path=" + path + ",codec=" + std::string(codec) + ")";
    size_t recovered_segments = 0;
    {
      auto pipeline = Pipeline::Builder()
                          .DefaultSpec("slide(eps=0.4)")
                          .Storage(spec)
                          .Build()
                          .value();
      // Build() already truncated the torn tail off the file.
      EXPECT_LT(FileSize(path), clean_size - 5);
      auto reader = SegmentArchiveReader::Open(path);
      ASSERT_TRUE(reader.ok());
      EXPECT_FALSE((*reader)->torn_tail());
      recovered_segments = (*reader)->segment_count();

      const Signal more = Walk(33);
      for (const DataPoint& p : more.points) {
        DataPoint shifted = p;
        shifted.t += static_cast<double>(last_t);
        ASSERT_TRUE(pipeline->Append("a", shifted).ok());
      }
      ASSERT_TRUE(pipeline->Finish().ok());
    }
    auto final_reader = SegmentArchiveReader::Open(path);
    ASSERT_TRUE(final_reader.ok());
    EXPECT_FALSE((*final_reader)->torn_tail());
    EXPECT_GT((*final_reader)->segment_count(), recovered_segments);
    // One continuous, valid chain per stream: the store rebuilt without
    // a single chain violation proves junction integrity across the
    // recovery boundary.
    for (const std::string& key : (*final_reader)->Keys()) {
      const SegmentStore* store = (*final_reader)->Store(key);
      EXPECT_TRUE(store->empty() ||
                  store->t_max() >= store->t_min());
    }
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace plastream
