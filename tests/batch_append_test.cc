// Copyright (c) 2026 The plastream Authors. MIT license.
//
// Batch-vs-single equivalence: AppendBatch must produce byte-identical
// segment chains and statistics to per-point Append at every layer —
// Filter, FilterBank, ShardedFilterBank (locked and threaded, several
// shard counts) and Pipeline — across filter families and dimensionalities.

#include <map>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/filter_registry.h"
#include "datagen/correlated_walk.h"
#include "stream/filter_bank.h"
#include "stream/pipeline.h"
#include "stream/sharded_filter_bank.h"

namespace plastream {
namespace {

Signal MakeSignal(size_t dims, size_t count, uint64_t seed) {
  CorrelatedWalkOptions options;
  options.count = count;
  options.dimensions = dims;
  options.correlation = 0.25;
  options.max_delta = 0.9;
  options.seed = seed;
  return GenerateCorrelatedWalk(options).value();
}

std::string SpecFor(const std::string& family, size_t dims) {
  return family + "(eps=0.4,dims=" + std::to_string(dims) + ")";
}

// Chops `points` into batches of `batch` and feeds them through
// AppendBatch; the tail batch is partial.
void AppendInBatches(Filter& filter, const std::vector<DataPoint>& points,
                     size_t batch) {
  for (size_t at = 0; at < points.size(); at += batch) {
    const size_t n = std::min(batch, points.size() - at);
    ASSERT_TRUE(
        filter.AppendBatch(std::span<const DataPoint>(&points[at], n)).ok());
  }
}

TEST(BatchAppendTest, FilterBatchMatchesSingleAcrossFamiliesAndDims) {
  const std::vector<std::string> families{"cache", "linear", "swing", "slide",
                                          "kalman"};
  for (const std::string& family : families) {
    for (const size_t dims : {1u, 4u, 8u}) {
      const Signal signal = MakeSignal(dims, 3000, 7 + dims);
      const std::string spec = SpecFor(family, dims);

      auto single = MakeFilter(spec).value();
      for (const DataPoint& p : signal.points) {
        ASSERT_TRUE(single->Append(p).ok());
      }
      ASSERT_TRUE(single->Finish().ok());
      const auto expected = single->TakeSegments();

      for (const size_t batch :
           {size_t{7}, size_t{256}, signal.points.size()}) {
        auto batched = MakeFilter(spec).value();
        AppendInBatches(*batched, signal.points, batch);
        ASSERT_TRUE(batched->Finish().ok());
        EXPECT_EQ(batched->TakeSegments(), expected)
            << family << " dims=" << dims << " batch=" << batch;
        EXPECT_EQ(batched->points_seen(), single->points_seen());
        EXPECT_EQ(batched->segments_emitted(), single->segments_emitted());
      }
    }
  }
}

TEST(BatchAppendTest, MaxLagProvisionalPathMatches) {
  const Signal signal = MakeSignal(2, 2000, 99);
  const std::string spec = "slide(eps=0.3,dims=2,max_lag=64)";
  auto single = MakeFilter(spec).value();
  for (const DataPoint& p : signal.points) ASSERT_TRUE(single->Append(p).ok());
  ASSERT_TRUE(single->Finish().ok());

  auto batched = MakeFilter(spec).value();
  AppendInBatches(*batched, signal.points, 100);
  ASSERT_TRUE(batched->Finish().ok());
  EXPECT_EQ(batched->TakeSegments(), single->TakeSegments());
  EXPECT_EQ(batched->extra_recordings(), single->extra_recordings());
}

TEST(BatchAppendTest, EmptyBatchIsANoOp) {
  auto filter = MakeFilter("swing(eps=0.5)").value();
  EXPECT_TRUE(filter->AppendBatch({}).ok());
  EXPECT_EQ(filter->points_seen(), 0u);

  FilterBank bank([](std::string_view) {
    return Result<std::unique_ptr<Filter>>(MakeFilter("swing(eps=0.5)"));
  });
  EXPECT_TRUE(bank.AppendBatch("k", {}).ok());
  EXPECT_FALSE(bank.Contains("k"));  // no filter created for an empty batch
}

TEST(BatchAppendTest, BatchStopsAtFirstErrorWithEarlierPointsApplied) {
  auto filter = MakeFilter("swing(eps=0.5)").value();
  std::vector<DataPoint> points;
  points.push_back(DataPoint::Scalar(1.0, 0.0));
  points.push_back(DataPoint::Scalar(2.0, 0.5));
  points.push_back(DataPoint::Scalar(1.5, 0.7));  // out of order
  points.push_back(DataPoint::Scalar(3.0, 0.9));
  const Status status = filter->AppendBatch(points);
  EXPECT_EQ(status.code(), StatusCode::kOutOfOrder);
  EXPECT_EQ(filter->points_seen(), 2u);  // the prefix before the error
  // The stream continues with corrected input, like the per-point path.
  EXPECT_TRUE(filter->Append(DataPoint::Scalar(2.5, 0.8)).ok());
  EXPECT_TRUE(filter->Finish().ok());
}

TEST(BatchAppendTest, FilterBankBatchMatchesSingle) {
  const auto factory = [](std::string_view) {
    return Result<std::unique_ptr<Filter>>(MakeFilter("slide(eps=0.4)"));
  };
  const Signal a = MakeSignal(1, 1500, 11);
  const Signal b = MakeSignal(1, 1500, 12);

  FilterBank single(factory);
  for (const DataPoint& p : a.points) ASSERT_TRUE(single.Append("a", p).ok());
  for (const DataPoint& p : b.points) ASSERT_TRUE(single.Append("b", p).ok());
  ASSERT_TRUE(single.FinishAll().ok());

  FilterBank batched(factory);
  for (size_t at = 0; at < a.points.size(); at += 128) {
    const size_t n = std::min<size_t>(128, a.points.size() - at);
    ASSERT_TRUE(
        batched
            .AppendBatch("a", std::span<const DataPoint>(&a.points[at], n))
            .ok());
    ASSERT_TRUE(
        batched
            .AppendBatch("b", std::span<const DataPoint>(&b.points[at], n))
            .ok());
  }
  ASSERT_TRUE(batched.FinishAll().ok());

  EXPECT_EQ(batched.TakeSegments("a").value(), single.TakeSegments("a").value());
  EXPECT_EQ(batched.TakeSegments("b").value(), single.TakeSegments("b").value());
  const auto s1 = single.Stats();
  const auto s2 = batched.Stats();
  EXPECT_EQ(s1.points, s2.points);
  EXPECT_EQ(s1.segments, s2.segments);
}

TEST(BatchAppendTest, ShardedBankMatrixMatchesSingleBaseline) {
  const size_t kKeys = 6;
  const size_t kPoints = 1200;
  std::vector<std::string> keys;
  std::vector<Signal> signals;
  for (size_t i = 0; i < kKeys; ++i) {
    keys.push_back("host" + std::to_string(i) + ".metric");
    signals.push_back(MakeSignal(4, kPoints, 40 + i));
  }
  const auto factory = [](std::string_view) {
    return Result<std::unique_ptr<Filter>>(
        MakeFilter("slide(eps=0.4,dims=4)"));
  };

  // Baseline: per-point appends through a 1-shard locked bank.
  std::map<std::string, std::vector<Segment>> expected;
  {
    ShardedFilterBank::Options baseline_options;
    baseline_options.shards = 1;
    auto bank = ShardedFilterBank::Create(factory, baseline_options).value();
    for (size_t i = 0; i < kKeys; ++i) {
      for (const DataPoint& p : signals[i].points) {
        ASSERT_TRUE(bank->Append(keys[i], p).ok());
      }
    }
    ASSERT_TRUE(bank->FinishAll().ok());
    for (size_t i = 0; i < kKeys; ++i) {
      expected[keys[i]] = bank->TakeSegments(keys[i]).value();
    }
  }

  for (const size_t shards : {1u, 3u, 4u}) {
    for (const bool threaded : {false, true}) {
      for (const size_t batch : {16u, 256u}) {
        ShardedFilterBank::Options options;
        options.shards = shards;
        options.threaded = threaded;
        options.queue_capacity = 8;  // exercise backpressure with batches
        auto bank = ShardedFilterBank::Create(factory, options).value();
        for (size_t at = 0; at < kPoints; at += batch) {
          const size_t n = std::min(batch, kPoints - at);
          for (size_t i = 0; i < kKeys; ++i) {
            ASSERT_TRUE(bank->AppendBatch(
                                keys[i], std::span<const DataPoint>(
                                             &signals[i].points[at], n))
                            .ok());
          }
        }
        ASSERT_TRUE(bank->FinishAll().ok());
        for (size_t i = 0; i < kKeys; ++i) {
          EXPECT_EQ(bank->TakeSegments(keys[i]).value(), expected[keys[i]])
              << "shards=" << shards << " threaded=" << threaded
              << " batch=" << batch << " key=" << keys[i];
        }
        const auto stats = bank->Stats();
        EXPECT_EQ(stats.points, kKeys * kPoints);
      }
    }
  }
}

TEST(BatchAppendTest, PipelineBatchMatchesSingle) {
  const Signal a = MakeSignal(1, 2000, 5);
  const Signal b = MakeSignal(1, 2000, 6);

  const auto build = [](size_t shards, bool threaded) {
    return Pipeline::Builder()
        .DefaultSpec("slide(eps=0.4)")
        .Codec("delta")
        .Shards(shards)
        .Threads(threaded)
        .Build()
        .value();
  };

  auto single = build(1, false);
  for (const DataPoint& p : a.points) {
    ASSERT_TRUE(single->Append("a", p).ok());
  }
  for (const DataPoint& p : b.points) {
    ASSERT_TRUE(single->Append("b", p).ok());
  }
  ASSERT_TRUE(single->Finish().ok());

  for (const size_t shards : {1u, 2u}) {
    for (const bool threaded : {false, true}) {
      auto batched = build(shards, threaded);
      for (size_t at = 0; at < a.points.size(); at += 256) {
        const size_t n = std::min<size_t>(256, a.points.size() - at);
        ASSERT_TRUE(batched
                        ->AppendBatch("a", std::span<const DataPoint>(
                                               &a.points[at], n))
                        .ok());
        ASSERT_TRUE(batched
                        ->AppendBatch("b", std::span<const DataPoint>(
                                               &b.points[at], n))
                        .ok());
      }
      ASSERT_TRUE(batched->Finish().ok());
      EXPECT_EQ(batched->Segments("a").value(), single->Segments("a").value());
      EXPECT_EQ(batched->Segments("b").value(), single->Segments("b").value());
      const auto s1 = single->Stats();
      const auto s2 = batched->Stats();
      EXPECT_EQ(s1.points, s2.points);
      EXPECT_EQ(s1.segments, s2.segments);
      EXPECT_EQ(s1.records_sent, s2.records_sent);
      // Archives are identical too: same segments, same per-key stores.
      for (const char* key : {"a", "b"}) {
        const SegmentStore* lhs = single->Store(key);
        const SegmentStore* rhs = batched->Store(key);
        ASSERT_NE(lhs, nullptr);
        ASSERT_NE(rhs, nullptr);
        ASSERT_EQ(lhs->segment_count(), rhs->segment_count());
        for (size_t k = 0; k < lhs->segment_count(); ++k) {
          EXPECT_EQ(lhs->segments()[k], rhs->segments()[k]);
        }
      }
    }
  }
}

}  // namespace
}  // namespace plastream
