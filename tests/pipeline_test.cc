// Copyright (c) 2026 The plastream Authors. MIT license.
//
// End-to-end tests for the Pipeline facade: spec-driven construction,
// keyed routing across the wire codec, the ε contract on the reconstructed
// output, and the archive/stats surfaces.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/random_walk.h"
#include "eval/metrics.h"
#include "plastream.h"

namespace plastream {
namespace {

Signal Walk(uint64_t seed, double x0) {
  RandomWalkOptions o;
  o.count = 2000;
  o.decrease_probability = 0.5;
  o.max_delta = 1.0;
  o.x0 = x0;
  o.seed = seed;
  return *GenerateRandomWalk(o);
}

TEST(PipelineBuilderTest, RequiresASpec) {
  auto pipeline = Pipeline::Builder().Build();
  EXPECT_EQ(pipeline.status().code(), StatusCode::kInvalidArgument);
}

TEST(PipelineBuilderTest, ReportsSpecParseErrorsAtBuild) {
  auto pipeline = Pipeline::Builder().DefaultSpec("slide(eps=").Build();
  EXPECT_EQ(pipeline.status().code(), StatusCode::kInvalidArgument);
}

TEST(PipelineBuilderTest, ReportsUnknownFamilyAtBuild) {
  auto pipeline = Pipeline::Builder().DefaultSpec("wavelet(eps=1)").Build();
  EXPECT_EQ(pipeline.status().code(), StatusCode::kNotFound);
}

TEST(PipelineBuilderTest, ReportsMissingEpsilonAtBuild) {
  // A spec without eps names a family but cannot build a filter.
  auto pipeline = Pipeline::Builder().DefaultSpec("slide").Build();
  EXPECT_EQ(pipeline.status().code(), StatusCode::kInvalidArgument);
}

TEST(PipelineTest, EndToEndHonorsThePrecisionContract) {
  constexpr double kDefaultEps = 0.5;
  constexpr double kCoarseEps = 2.0;
  auto pipeline = Pipeline::Builder()
                      .DefaultSpec("slide(eps=0.5)")
                      .PerKeySpec("coarse", "swing(eps=2)")
                      .Build()
                      .value();

  const std::vector<std::pair<std::string, Signal>> streams{
      {"fine-1", Walk(1, 10.0)},
      {"fine-2", Walk(2, -5.0)},
      {"coarse", Walk(3, 100.0)},
  };
  for (size_t j = 0; j < 2000; ++j) {
    for (const auto& [key, signal] : streams) {
      ASSERT_TRUE(pipeline->Append(key, signal.points[j]).ok());
    }
  }
  ASSERT_TRUE(pipeline->Finish().ok());
  EXPECT_TRUE(pipeline->finished());

  // Every stream's receiver-side reconstruction is within its ε of the raw
  // signal — the paper's guarantee, carried across the wire codec.
  for (const auto& [key, signal] : streams) {
    const auto approx = pipeline->Reconstruction(key);
    ASSERT_TRUE(approx.ok()) << key;
    const std::vector<double> eps{key == "coarse" ? kCoarseEps : kDefaultEps};
    EXPECT_TRUE(VerifyPrecision(signal, *approx, eps).ok()) << key;
  }

  // The per-key spec actually selected a different family.
  ASSERT_NE(pipeline->GetFilter("coarse"), nullptr);
  EXPECT_EQ(pipeline->GetFilter("coarse")->name(), "swing");
  EXPECT_EQ(pipeline->GetFilter("fine-1")->name(), "slide");
  EXPECT_EQ(pipeline->SpecFor("coarse")->family, "swing");
  EXPECT_EQ(pipeline->SpecFor("anything-else")->family, "slide");
}

TEST(PipelineTest, StoreServesErrorBoundedQueries) {
  auto pipeline =
      Pipeline::Builder().DefaultSpec("slide(eps=0.25)").Build().value();
  const Signal signal = Walk(7, 50.0);
  for (const DataPoint& p : signal.points) {
    ASSERT_TRUE(pipeline->Append("s", p).ok());
  }
  ASSERT_TRUE(pipeline->Finish().ok());

  const SegmentStore* store = pipeline->Store("s");
  ASSERT_NE(store, nullptr);
  EXPECT_GT(store->segment_count(), 0u);
  EXPECT_LT(store->segment_count(), signal.size());

  // Point queries answered from the archive stay within ε of the samples.
  for (size_t j = 0; j < signal.size(); j += 97) {
    const auto value = store->ValueAt(signal.points[j].t, 0);
    ASSERT_TRUE(value.ok()) << "t=" << signal.points[j].t;
    EXPECT_LE(std::abs(*value - signal.points[j].x[0]), 0.25 + 1e-9);
  }

  // Range aggregates come from the same archived chain.
  const auto agg = store->Aggregate(store->t_min(), store->t_max(), 0);
  ASSERT_TRUE(agg.ok());
  EXPECT_GE(agg->max, agg->min);
}

TEST(PipelineTest, StorageNoneDisablesTheArchive) {
  auto pipeline = Pipeline::Builder()
                      .DefaultSpec("cache(eps=1)")
                      .Storage("none")
                      .Build()
                      .value();
  ASSERT_TRUE(pipeline->Append("k", 0.0, 1.0).ok());
  ASSERT_TRUE(pipeline->Finish().ok());
  EXPECT_EQ(pipeline->Store("k"), nullptr);
  // Receiver-side segments are still available.
  EXPECT_EQ(pipeline->Segments("k")->size(), 1u);
}

TEST(PipelineTest, UnknownKeyWithoutDefaultIsNotFound) {
  auto pipeline = Pipeline::Builder()
                      .PerKeySpec("known", "swing(eps=1)")
                      .Build()
                      .value();
  ASSERT_TRUE(pipeline->Append("known", 0.0, 1.0).ok());
  EXPECT_EQ(pipeline->Append("unknown", 0.0, 1.0).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(pipeline->Segments("unknown").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(pipeline->Store("unknown"), nullptr);
}

TEST(PipelineTest, FilterErrorsPropagate) {
  auto pipeline =
      Pipeline::Builder().DefaultSpec("swing(eps=1)").Build().value();
  ASSERT_TRUE(pipeline->Append("k", 1.0, 0.0).ok());
  EXPECT_EQ(pipeline->Append("k", 1.0, 0.0).code(), StatusCode::kOutOfOrder);
  ASSERT_TRUE(pipeline->Finish().ok());
  EXPECT_EQ(pipeline->Append("k", 2.0, 0.0).code(),
            StatusCode::kFailedPrecondition);
}

TEST(PipelineTest, StatsAggregateAcrossStreams) {
  auto pipeline =
      Pipeline::Builder().DefaultSpec("slide(eps=0.5)").Build().value();
  for (int j = 0; j < 500; ++j) {
    ASSERT_TRUE(pipeline->Append("a", j, std::sin(j * 0.01)).ok());
    ASSERT_TRUE(pipeline->Append("b", j, std::cos(j * 0.01)).ok());
  }
  ASSERT_TRUE(pipeline->Finish().ok());
  const auto stats = pipeline->Stats();
  EXPECT_EQ(stats.streams, 2u);
  EXPECT_EQ(stats.points, 1000u);
  EXPECT_GT(stats.segments, 0u);
  EXPECT_GT(stats.records_sent, 0u);
  EXPECT_GT(stats.bytes_sent, 0u);
  EXPECT_EQ(stats.bytes_raw, 1000u * 2 * sizeof(double));
  // Compression on the wire: the smooth signals shrink a lot.
  EXPECT_LT(stats.bytes_sent, stats.bytes_raw);

  // Per-stream stats sum to the aggregate.
  const auto a = pipeline->StatsFor("a").value();
  const auto b = pipeline->StatsFor("b").value();
  EXPECT_EQ(a.points, 500u);
  EXPECT_EQ(a.points + b.points, stats.points);
  EXPECT_EQ(a.segments + b.segments, stats.segments);
  EXPECT_EQ(a.records_sent + b.records_sent, stats.records_sent);
  EXPECT_EQ(a.bytes_sent + b.bytes_sent, stats.bytes_sent);
  EXPECT_EQ(pipeline->StatsFor("nope").status().code(),
            StatusCode::kNotFound);
}

TEST(PipelineTest, ReceiverSegmentsMatchABareFilterRun) {
  // The transport must be lossless: pipeline output == direct filter output.
  const Signal signal = Walk(11, 0.0);
  auto pipeline =
      Pipeline::Builder().DefaultSpec("swing(eps=0.75)").Build().value();
  auto direct = MakeFilter("swing(eps=0.75)").value();
  for (const DataPoint& p : signal.points) {
    ASSERT_TRUE(pipeline->Append("k", p).ok());
    ASSERT_TRUE(direct->Append(p).ok());
  }
  ASSERT_TRUE(pipeline->Finish().ok());
  ASSERT_TRUE(direct->Finish().ok());

  const auto received = pipeline->Segments("k").value();
  const auto expected = direct->TakeSegments();
  ASSERT_EQ(received.size(), expected.size());
  for (size_t k = 0; k < received.size(); ++k) {
    EXPECT_EQ(received[k].t_start, expected[k].t_start) << k;
    EXPECT_EQ(received[k].t_end, expected[k].t_end) << k;
    EXPECT_EQ(received[k].x_start, expected[k].x_start) << k;
    EXPECT_EQ(received[k].x_end, expected[k].x_end) << k;
    EXPECT_EQ(received[k].connected_to_prev, expected[k].connected_to_prev)
        << k;
  }
}

}  // namespace
}  // namespace plastream
