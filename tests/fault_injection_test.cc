// Copyright (c) 2026 The plastream Authors. MIT license.
//
// The seeded fault-injection subsystem and the robustness behavior it
// drives: FaultPlan spec parsing and determinism, the socket and file
// hook points, and the file backend's on_error policies — a full
// ENOSPC-degrade-and-resume cycle whose archive stays readable, and the
// fail policy's sticky, IsDiskFull-classifiable error.

#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "plastream.h"
#include "storage/archive_format.h"
#include "transport/socket_util.h"

namespace plastream {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "plastream_faults_" + name + "_" +
         std::to_string(::getpid()) + ".plar";
}

Segment DisconnectedSegment(double t0) {
  Segment segment;
  segment.t_start = t0;
  segment.t_end = t0 + 0.5;
  segment.x_start = {t0};
  segment.x_end = {t0 + 1.0};
  segment.connected_to_prev = false;
  return segment;
}

// --- FaultPlan grammar ------------------------------------------------------

TEST(FaultPlanTest, ParsesAndRoundTrips) {
  const auto plan = FaultPlan::Parse(
      "faults(seed=42,short_io=0.25,err_rate=0.05,enospc_after=64,"
      "enospc_for=3,delay_ms=2,delay_rate=0.5)");
  ASSERT_TRUE(plan.ok()) << plan.status().message();
  EXPECT_EQ(plan->seed, 42u);
  EXPECT_DOUBLE_EQ(plan->short_io, 0.25);
  EXPECT_DOUBLE_EQ(plan->err_rate, 0.05);
  EXPECT_EQ(plan->enospc_after, 64u);
  EXPECT_EQ(plan->enospc_for, 3u);
  EXPECT_EQ(plan->delay_ms, 2u);
  EXPECT_DOUBLE_EQ(plan->delay_rate, 0.5);
  EXPECT_TRUE(plan->Enabled());
  const auto reparsed = FaultPlan::Parse(plan->Format());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().message();
  EXPECT_EQ(reparsed->Format(), plan->Format());
}

TEST(FaultPlanTest, DefaultsAreInert) {
  const auto plan = FaultPlan::Parse("faults(seed=7)");
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->Enabled());
  // No decision ever perturbs anything under an inert plan.
  FaultInjector injector(*plan);
  for (int i = 0; i < 64; ++i) {
    const FaultDecision decision =
        injector.Next(FaultSite::kSocketRead, 4096);
    EXPECT_FALSE(decision.fail);
    EXPECT_FALSE(decision.no_space);
    EXPECT_EQ(decision.clamp_len, 0u);
    EXPECT_EQ(decision.delay_ms, 0u);
  }
}

TEST(FaultPlanTest, DelayRateDefaultsWhenDelaySet) {
  const auto plan = FaultPlan::Parse("faults(delay_ms=5)");
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->delay_rate, 0.01);
  EXPECT_TRUE(plan->Enabled());
}

TEST(FaultPlanTest, RejectsGarbage) {
  EXPECT_EQ(FaultPlan::Parse("chaos(seed=1)").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultPlan::Parse("faults(volume=11)").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultPlan::Parse("faults(err_rate=1.5)").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultPlan::Parse("faults(short_io=-0.1)").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultPlan::Parse("faults(seed=banana)").status().code(),
            StatusCode::kInvalidArgument);
}

// --- determinism ------------------------------------------------------------

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.short_io = 0.3;
  plan.err_rate = 0.1;
  FaultInjector a(plan);
  FaultInjector b(plan);
  for (int i = 0; i < 512; ++i) {
    const FaultDecision da = a.Next(FaultSite::kSocketWrite, 4096);
    const FaultDecision db = b.Next(FaultSite::kSocketWrite, 4096);
    EXPECT_EQ(da.fail, db.fail) << "op " << i;
    EXPECT_EQ(da.clamp_len, db.clamp_len) << "op " << i;
  }
}

TEST(FaultInjectorTest, DifferentSeedsDifferentSchedules) {
  FaultPlan plan_a;
  plan_a.err_rate = 0.5;
  plan_a.seed = 1;
  FaultPlan plan_b = plan_a;
  plan_b.seed = 2;
  FaultInjector a(plan_a);
  FaultInjector b(plan_b);
  int differing = 0;
  for (int i = 0; i < 256; ++i) {
    if (a.Next(FaultSite::kSocketRead, 64).fail !=
        b.Next(FaultSite::kSocketRead, 64).fail) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjectorTest, SitesHaveIndependentCounters) {
  FaultPlan plan;
  plan.enospc_after = 2;
  plan.enospc_for = 1;
  FaultInjector injector(plan);
  // Socket traffic does not consume the file-write schedule.
  for (int i = 0; i < 16; ++i) injector.Next(FaultSite::kSocketRead, 64);
  EXPECT_FALSE(injector.Next(FaultSite::kFileWrite, 64).no_space);  // 0
  EXPECT_FALSE(injector.Next(FaultSite::kFileWrite, 64).no_space);  // 1
  EXPECT_TRUE(injector.Next(FaultSite::kFileWrite, 64).no_space);   // 2
  EXPECT_FALSE(injector.Next(FaultSite::kFileWrite, 64).no_space);  // 3
}

// --- scoped activation ------------------------------------------------------

TEST(ScopedFaultInjectionTest, InstallsAndRestores) {
  FaultInjector* before = FaultInjector::Active();
  {
    FaultPlan plan;
    plan.err_rate = 1.0;
    ScopedFaultInjection scope(plan);
    ASSERT_EQ(FaultInjector::Active(), scope.injector());
    {
      FaultPlan inner;
      inner.short_io = 1.0;
      ScopedFaultInjection nested(inner);
      EXPECT_EQ(FaultInjector::Active(), nested.injector());
    }
    EXPECT_EQ(FaultInjector::Active(), scope.injector());
  }
  EXPECT_EQ(FaultInjector::Active(), before);
}

// --- socket hooks -----------------------------------------------------------

TEST(SocketFaultTest, ErrRateFailsReadsAndWrites) {
  FaultPlan plan;
  plan.err_rate = 1.0;
  ScopedFaultInjection scope(plan);
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  SocketFd read_end(fds[0]);
  SocketFd write_end(fds[1]);
  uint8_t buf[16] = {0};
  size_t n = 0;
  EXPECT_EQ(ReadSome(read_end.get(), std::span<uint8_t>(buf, sizeof(buf)),
                     &n),
            IoOutcome::kError);
  EXPECT_EQ(WriteSome(write_end.get(),
                      std::span<const uint8_t>(buf, sizeof(buf)), &n),
            IoOutcome::kError);
}

TEST(SocketFaultTest, ShortIoClampsTransfersToOneByte) {
  FaultPlan plan;
  plan.short_io = 1.0;
  ScopedFaultInjection scope(plan);
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  SocketFd read_end(fds[0]);
  SocketFd write_end(fds[1]);
  ASSERT_TRUE(SetNonBlocking(read_end.get()).ok());
  ASSERT_TRUE(SetNonBlocking(write_end.get()).ok());
  const uint8_t payload[64] = {7};
  size_t n = 0;
  ASSERT_EQ(WriteSome(write_end.get(),
                      std::span<const uint8_t>(payload, sizeof(payload)),
                      &n),
            IoOutcome::kProgress);
  EXPECT_EQ(n, 1u);
  uint8_t buf[64] = {0};
  ASSERT_EQ(ReadSome(read_end.get(), std::span<uint8_t>(buf, sizeof(buf)),
                     &n),
            IoOutcome::kProgress);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(buf[0], 7);
}

TEST(SocketFaultTest, ConnectFaultFailsTheDial) {
  FaultPlan plan;
  plan.err_rate = 1.0;
  ScopedFaultInjection scope(plan);
  const auto dialed = TcpConnect("127.0.0.1", 1, /*connect_timeout_ms=*/50);
  ASSERT_FALSE(dialed.ok());
  EXPECT_NE(dialed.status().message().find("injected fault"),
            std::string::npos)
      << dialed.status().message();
}

// --- file backend: ENOSPC classification and on_error policies --------------

TEST(FileBackendFaultTest, FailPolicyIsStickyAndClassified) {
  const std::string path = TempPath("fail_policy");
  std::remove(path.c_str());
  FaultPlan plan;
  plan.enospc_after = 2;  // write 0 = stream-open, write 1 = one segment
  plan.enospc_for = 1000;
  ScopedFaultInjection scope(plan);
  auto backend = MakeStorageBackend("file(path=" + path + ")").value();
  ASSERT_TRUE(backend->Open().ok());
  auto stream = backend->OpenStream("k", 1);
  ASSERT_TRUE(stream.ok()) << stream.status().message();
  ASSERT_TRUE(stream.value()->Append(DisconnectedSegment(0)).ok());
  const Status failed = stream.value()->Append(DisconnectedSegment(1));
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(IsDiskFull(failed)) << failed.message();
  EXPECT_NE(failed.message().find("No space left"), std::string::npos)
      << failed.message();
  // Sticky: later appends and Flush keep reporting the medium failure.
  EXPECT_TRUE(IsDiskFull(stream.value()->Append(DisconnectedSegment(2))));
  EXPECT_TRUE(IsDiskFull(backend->Flush()));
  EXPECT_EQ(backend->Health().state, StorageHealth::State::kFailing);
  EXPECT_FALSE(backend->Health().cause.empty());
  std::remove(path.c_str());
}

TEST(FileBackendFaultTest, DegradePolicySurvivesEnospcAndResumes) {
  const std::string path = TempPath("degrade_resume");
  std::remove(path.c_str());
  FaultPlan plan;
  // kFileWrite schedule: write 0 = stream-open, writes 1-2 = segments 0-1.
  // Degrade-mode flushes peek the *next* write slot, so segment 2's
  // post-write flush already sees slot 4 and the degradation window
  // covers segments 2-4; segment 5 finds the medium free again.
  plan.enospc_after = 4;
  plan.enospc_for = 2;
  {
    ScopedFaultInjection scope(plan);
    auto backend =
        MakeStorageBackend("file(path=" + path + ",on_error=degrade)")
            .value();
    ASSERT_TRUE(backend->Open().ok());
    auto stream = backend->OpenStream("k", 1).value();

    // Healthy prefix.
    ASSERT_TRUE(stream->Append(DisconnectedSegment(0)).ok());
    ASSERT_TRUE(stream->Append(DisconnectedSegment(1)).ok());
    EXPECT_EQ(backend->Health().state, StorageHealth::State::kOk);

    // The ENOSPC window: ingest keeps being served (Append returns OK),
    // archiving degrades, segments are counted as dropped.
    ASSERT_TRUE(stream->Append(DisconnectedSegment(2)).ok());
    StorageHealth health = backend->Health();
    EXPECT_EQ(health.state, StorageHealth::State::kDegraded);
    EXPECT_NE(health.cause.find("[ENOSPC]"), std::string::npos)
        << health.cause;
    EXPECT_EQ(health.segments_dropped, 1u);
    ASSERT_TRUE(stream->Append(DisconnectedSegment(3)).ok());
    ASSERT_TRUE(stream->Append(DisconnectedSegment(4)).ok());
    EXPECT_EQ(backend->Health().segments_dropped, 3u);
    EXPECT_EQ(backend->Health().state, StorageHealth::State::kDegraded);

    // The medium frees up: the next probe lands and health recovers.
    ASSERT_TRUE(stream->Append(DisconnectedSegment(5)).ok());
    health = backend->Health();
    EXPECT_EQ(health.state, StorageHealth::State::kOk);
    EXPECT_TRUE(health.cause.empty());
    EXPECT_EQ(health.recoveries, 1u);
    EXPECT_EQ(health.write_failures, 3u);

    // The queryable in-memory view always has everything.
    EXPECT_EQ(stream->store()->segment_count(), 6u);
    ASSERT_TRUE(backend->Flush().ok());
    ASSERT_TRUE(backend->Close().ok());
  }

  // The surviving archive is clean: no torn tail, and exactly the logged
  // segments (the dropped ones left a recorded gap, not corruption).
  const auto scan = ScanArchiveFile(path);
  ASSERT_TRUE(scan.ok()) << scan.status().message();
  EXPECT_FALSE(scan->torn) << scan->torn_reason;
  EXPECT_EQ(scan->segments, 3u);  // segments 0, 1 and 5
  ASSERT_EQ(scan->streams.size(), 1u);
  const SegmentStore& recovered = *scan->streams[0]->store;
  ASSERT_EQ(recovered.segment_count(), 3u);
  EXPECT_DOUBLE_EQ(recovered.segments()[0].t_start, 0.0);
  EXPECT_DOUBLE_EQ(recovered.segments()[1].t_start, 1.0);
  EXPECT_DOUBLE_EQ(recovered.segments()[2].t_start, 5.0);
  // The post-gap segment must not claim continuity with a predecessor
  // that never reached the log.
  EXPECT_FALSE(recovered.segments()[2].connected_to_prev);

  // And a recovering writer appends to it seamlessly, fault-free.
  {
    auto backend =
        MakeStorageBackend("file(path=" + path + ",on_error=degrade)")
            .value();
    ASSERT_TRUE(backend->Open().ok());
    auto stream = backend->OpenStream("k", 1).value();
    EXPECT_EQ(stream->store()->segment_count(), 3u);
    ASSERT_TRUE(stream->Append(DisconnectedSegment(9)).ok());
    EXPECT_EQ(backend->Health().state, StorageHealth::State::kOk);
    ASSERT_TRUE(backend->Close().ok());
  }
  std::remove(path.c_str());
}

TEST(FileBackendFaultTest, DegradedStreamOpenDefersItsLogRecord) {
  const std::string path = TempPath("deferred_open");
  std::remove(path.c_str());
  FaultPlan plan;
  // "a"'s open record is write 0; its flush peeks slot 1, which is in the
  // window [1, 3) — the open is rolled back and deferred.
  plan.enospc_after = 1;
  plan.enospc_for = 2;
  {
    ScopedFaultInjection scope(plan);
    auto backend =
        MakeStorageBackend("file(path=" + path + ",on_error=degrade)")
            .value();
    ASSERT_TRUE(backend->Open().ok());
    auto a = backend->OpenStream("a", 1).value();  // deferred, degraded
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(backend->Health().state, StorageHealth::State::kDegraded);
    // write 1: "a"'s open retry fails -> its segment is dropped.
    ASSERT_TRUE(a->Append(DisconnectedSegment(0)).ok());
    // Opening a second stream while degraded must not write its open
    // record out of order; it is served from memory and deferred too
    // (write 2, the last failing slot).
    auto b = backend->OpenStream("b", 1).value();
    ASSERT_NE(b, nullptr);
    // The medium frees up: write 3 = b's deferred open, write 4 = b's
    // segment; both land and health recovers.
    ASSERT_TRUE(b->Append(DisconnectedSegment(10)).ok());
    EXPECT_EQ(backend->Health().state, StorageHealth::State::kOk);
    // "a"'s deferred open lands on its next append (writes 5-6).
    ASSERT_TRUE(a->Append(DisconnectedSegment(1)).ok());
    ASSERT_TRUE(backend->Close().ok());
  }
  // The log's stream ids are sequential in landing order ("b" before
  // "a") even though both opens raced a failing medium — the scanner
  // accepts the archive whole.
  const auto scan = ScanArchiveFile(path);
  ASSERT_TRUE(scan.ok()) << scan.status().message();
  EXPECT_FALSE(scan->torn) << scan->torn_reason;
  ASSERT_EQ(scan->streams.size(), 2u);
  EXPECT_EQ(scan->streams[0]->key, "b");
  EXPECT_EQ(scan->streams[1]->key, "a");
  EXPECT_EQ(scan->streams[0]->store->segment_count(), 1u);
  EXPECT_EQ(scan->streams[1]->store->segment_count(), 1u);
  std::remove(path.c_str());
}

// --- Pipeline::Health -------------------------------------------------------

TEST(PipelineHealthTest, ReportsStorageDegradation) {
  const std::string path = TempPath("pipeline_health");
  std::remove(path.c_str());
  FaultPlan plan;
  plan.enospc_after = 1;  // only the stream-open record ever lands
  plan.enospc_for = 100000;
  ScopedFaultInjection scope(plan);
  auto pipeline = Pipeline::Builder()
                      .DefaultSpec("cache(eps=0.1)")
                      .Storage("file(path=" + path + ",on_error=degrade)")
                      .Build()
                      .value();
  EXPECT_EQ(pipeline->Health().state, StorageHealth::State::kOk);
  // Values jumping far past eps force a segment per appended point.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(pipeline->Append("k", i, i * 10.0).ok());
  }
  // Ingest survives the full-disk window; Finish stays OK by contract.
  ASSERT_TRUE(pipeline->Finish().ok());
  const Pipeline::HealthSnapshot health = pipeline->Health();
  EXPECT_EQ(health.state, StorageHealth::State::kDegraded);
  EXPECT_NE(health.cause.find("[ENOSPC]"), std::string::npos)
      << health.cause;
  EXPECT_GE(health.storage.segments_dropped, 1u);
  EXPECT_GE(health.storage.write_failures, 1u);
  // Stats carries the same report, and the receiver-side segments are all
  // still queryable.
  EXPECT_EQ(pipeline->Stats().storage_health.state,
            StorageHealth::State::kDegraded);
  EXPECT_GE(pipeline->Segments("k")->size(), 1u);
  std::remove(path.c_str());
}

TEST(PipelineHealthTest, HealthyPipelineReportsOk) {
  auto pipeline =
      Pipeline::Builder().DefaultSpec("swing(eps=1)").Build().value();
  ASSERT_TRUE(pipeline->Append("k", 0.0, 1.0).ok());
  ASSERT_TRUE(pipeline->Finish().ok());
  const Pipeline::HealthSnapshot health = pipeline->Health();
  EXPECT_EQ(health.state, StorageHealth::State::kOk);
  EXPECT_TRUE(health.cause.empty());
  EXPECT_EQ(StorageHealthStateName(health.state), "ok");
}

}  // namespace
}  // namespace plastream
