// Copyright (c) 2026 The plastream Authors. MIT license.
//
// Unit tests for the evaluation harness: error metrics, compression
// accounting, the Section 5.4 independent-vs-joint correction, the filter
// registry, and the table printer.

#include <sstream>

#include <gtest/gtest.h>

#include "datagen/random_walk.h"
#include "datagen/shapes.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "eval/table.h"

namespace plastream {
namespace {

Segment MakeSegment(double t0, double t1, double x0, double x1,
                    bool connected = false) {
  Segment seg;
  seg.t_start = t0;
  seg.t_end = t1;
  seg.x_start = {x0};
  seg.x_end = {x1};
  seg.connected_to_prev = connected;
  return seg;
}

TEST(MetricsTest, ComputeErrorHandComputed) {
  Signal signal;
  signal.points = {DataPoint::Scalar(0, 1.0), DataPoint::Scalar(1, 2.0),
                   DataPoint::Scalar(2, 0.0)};
  // Approximation: flat zero over [0, 2]. Errors: 1, 2, 0.
  const auto fn = PiecewiseLinearFunction::Make({MakeSegment(0, 2, 0, 0)});
  ASSERT_TRUE(fn.ok());
  const auto report = ComputeError(signal, *fn);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->avg_error[0], 1.0);
  EXPECT_DOUBLE_EQ(report->max_error[0], 2.0);
  EXPECT_DOUBLE_EQ(report->avg_error_overall, 1.0);
  EXPECT_DOUBLE_EQ(report->max_error_overall, 2.0);
  EXPECT_EQ(report->samples, 3u);
}

TEST(MetricsTest, ComputeErrorFailsOnUncoveredSample) {
  Signal signal;
  signal.points = {DataPoint::Scalar(5, 1.0)};
  const auto fn = PiecewiseLinearFunction::Make({MakeSegment(0, 2, 0, 0)});
  ASSERT_TRUE(fn.ok());
  EXPECT_EQ(ComputeError(signal, *fn).status().code(), StatusCode::kNotFound);
}

TEST(MetricsTest, VerifyPrecisionPassesAtBoundary) {
  Signal signal;
  signal.points = {DataPoint::Scalar(0, 1.0)};
  const auto fn = PiecewiseLinearFunction::Make({MakeSegment(0, 1, 0, 0)});
  const std::vector<double> eps{1.0};
  EXPECT_TRUE(VerifyPrecision(signal, *fn, eps).ok());
}

TEST(MetricsTest, VerifyPrecisionFailsBeyondEpsilon) {
  Signal signal;
  signal.points = {DataPoint::Scalar(0, 1.5)};
  const auto fn = PiecewiseLinearFunction::Make({MakeSegment(0, 1, 0, 0)});
  const std::vector<double> eps{1.0};
  EXPECT_EQ(VerifyPrecision(signal, *fn, eps).code(),
            StatusCode::kFailedPrecondition);
}

TEST(MetricsTest, VerifyPrecisionChecksDimensionality) {
  Signal signal;
  signal.points = {DataPoint::Scalar(0, 0.0)};
  const auto fn = PiecewiseLinearFunction::Make({MakeSegment(0, 1, 0, 0)});
  const std::vector<double> eps{1.0, 1.0};
  EXPECT_EQ(VerifyPrecision(signal, *fn, eps).code(),
            StatusCode::kInvalidArgument);
}

TEST(MetricsTest, CompressionRatioDefinition) {
  const std::vector<Segment> segments{MakeSegment(0, 1, 0, 1, false),
                                      MakeSegment(1, 2, 1, 0, true)};
  const auto report = ComputeCompression(
      30, segments, RecordingCostModel::kPiecewiseLinear);
  EXPECT_EQ(report.recordings, 3u);
  EXPECT_DOUBLE_EQ(report.ratio, 10.0);  // 30 points / 3 recordings
}

TEST(MetricsTest, IndependentToJointRatioFormula) {
  // Paper Section 5.4: 2.47 per-dimension ratio on a 5-dimensional signal
  // becomes 2.47 * 6/10 = 1.48.
  EXPECT_NEAR(IndependentToJointRatio(2.47, 5), 1.482, 1e-9);
  EXPECT_DOUBLE_EQ(IndependentToJointRatio(3.0, 1), 3.0);  // d=1: no change
}

TEST(RunnerTest, VariantLabelsAreUnique) {
  const auto variants = AllFilterVariants();
  for (size_t i = 0; i < variants.size(); ++i) {
    for (size_t j = i + 1; j < variants.size(); ++j) {
      EXPECT_NE(variants[i].Label(), variants[j].Label());
    }
  }
}

TEST(RunnerTest, PaperVariantsAreTheFourFamilies) {
  const auto variants = PaperFilterVariants();
  ASSERT_EQ(variants.size(), 4u);
  EXPECT_EQ(variants[0].family, "cache");
  EXPECT_EQ(variants[1].family, "linear");
  EXPECT_EQ(variants[2].family, "swing");
  EXPECT_EQ(variants[3].family, "slide");
}

TEST(RunnerTest, MakeFilterProducesEveryVariant) {
  for (const FilterSpec& spec : AllFilterVariants()) {
    FilterSpec configured = spec;
    configured.options = FilterOptions::Scalar(1.0);
    const auto filter = MakeFilter(configured);
    ASSERT_TRUE(filter.ok()) << spec.Label();
    EXPECT_FALSE((*filter)->name().empty());
    EXPECT_EQ((*filter)->name(), spec.family) << spec.Label();
  }
}

TEST(RunnerTest, RunFilterEndToEnd) {
  RandomWalkOptions o;
  o.count = 500;
  o.seed = 31;
  const Signal signal = *GenerateRandomWalk(o);
  const auto result = RunFilter(FilterSpec{.family = "slide"},
                                FilterOptions::Scalar(0.5), signal);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->compression.points, 500u);
  EXPECT_GT(result->compression.ratio, 1.0);
  EXPECT_LE(result->error.max_error_overall, 0.5 + 1e-9);
  EXPECT_GE(result->filter_seconds, 0.0);
  EXPECT_EQ(result->spec.Format(), "slide(eps=0.5)");
}

TEST(RunnerTest, RunFilterRejectsInvalidSignal) {
  Signal bad;
  bad.points = {DataPoint::Scalar(1, 0), DataPoint::Scalar(0, 1)};
  EXPECT_FALSE(RunFilter(FilterSpec{.family = "swing"},
                         FilterOptions::Scalar(1.0), bad)
                   .ok());
}

TEST(RunnerTest, RunFilterRejectsDimensionMismatch) {
  const Signal signal = *GenerateLine(10, 0, 1);
  EXPECT_FALSE(RunFilter(FilterSpec{.family = "swing"},
                         FilterOptions::Uniform(2, 1.0), signal)
                   .ok());
}

TEST(RunnerTest, RunFilterRejectsUnknownFamily) {
  const Signal signal = *GenerateLine(10, 0, 1);
  const auto result = RunFilter(FilterSpec{.family = "wavelet"},
                                FilterOptions::Scalar(1.0), signal);
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(TableTest, AlignsColumns) {
  Table table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer-name", "2.5"});
  const std::string text = table.ToString();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer-name"), std::string::npos);
  // All lines share the same column start for "value"/numbers.
  std::stringstream ss(text);
  std::string header, rule, row1, row2;
  std::getline(ss, header);
  std::getline(ss, rule);
  std::getline(ss, row1);
  std::getline(ss, row2);
  EXPECT_EQ(header.find("value"), row2.find("2.5"));
}

TEST(TableTest, NumericRowFormatting) {
  Table table({"eps", "a", "b"});
  table.AddNumericRow("1%", {1.23456789, 42.0});
  const std::string text = table.ToString();
  EXPECT_NE(text.find("1.235"), std::string::npos);  // 4 significant digits
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(TableTest, MissingCellsRenderEmpty) {
  Table table({"a", "b", "c"});
  table.AddRow({"only-one"});
  EXPECT_NE(table.ToString().find("only-one"), std::string::npos);
}

}  // namespace
}  // namespace plastream
