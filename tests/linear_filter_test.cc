// Copyright (c) 2026 The plastream Authors. MIT license.
//
// Unit tests for the linear filter (Section 2.2 baseline), connected and
// disconnected modes.

#include <vector>

#include <gtest/gtest.h>

#include "core/linear_filter.h"

namespace plastream {
namespace {

std::unique_ptr<LinearFilter> Make(double eps,
                                   LinearMode mode = LinearMode::kConnected) {
  return LinearFilter::Create(FilterOptions::Scalar(eps), mode).value();
}

std::vector<Segment> RunPoints(LinearFilter* filter,
                         const std::vector<DataPoint>& points) {
  for (const DataPoint& p : points) EXPECT_TRUE(filter->Append(p).ok());
  EXPECT_TRUE(filter->Finish().ok());
  return filter->TakeSegments();
}

TEST(LinearFilterTest, SlopeDefinedByFirstTwoPoints) {
  auto filter = Make(0.5);
  // Line through (0,0),(1,2) has slope 2; (2,4) and (3,6) lie on it.
  const auto segments = RunPoints(
      filter.get(), {DataPoint::Scalar(0, 0), DataPoint::Scalar(1, 2),
                     DataPoint::Scalar(2, 4), DataPoint::Scalar(3, 6)});
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_DOUBLE_EQ(segments[0].x_end[0], 6.0);
}

TEST(LinearFilterTest, ViolationTerminatesAtPrediction) {
  auto filter = Make(0.5);
  // Line slope 2 predicts 4 at t=2; actual 4.4 is within eps. At t=3 the
  // prediction is 6 and actual 8 violates; the segment must end at the
  // *predicted* value for t=2, which is 4 (not the observed 4.4).
  const auto segments = RunPoints(
      filter.get(), {DataPoint::Scalar(0, 0), DataPoint::Scalar(1, 2),
                     DataPoint::Scalar(2, 4.4), DataPoint::Scalar(3, 8)});
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_DOUBLE_EQ(segments[0].t_end, 2.0);
  EXPECT_DOUBLE_EQ(segments[0].x_end[0], 4.0);
}

TEST(LinearFilterTest, ConnectedModeSharesEndpoints) {
  auto filter = Make(0.25);
  const auto segments = RunPoints(
      filter.get(), {DataPoint::Scalar(0, 0), DataPoint::Scalar(1, 1),
                     DataPoint::Scalar(2, 5), DataPoint::Scalar(3, 9)});
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_FALSE(segments[0].connected_to_prev);
  EXPECT_TRUE(segments[1].connected_to_prev);
  EXPECT_DOUBLE_EQ(segments[1].t_start, segments[0].t_end);
  EXPECT_DOUBLE_EQ(segments[1].x_start[0], segments[0].x_end[0]);
  // The new segment's line runs through the violating point (2,5).
  EXPECT_DOUBLE_EQ(segments[1].ValueAt(2.0, 0), 5.0);
}

TEST(LinearFilterTest, DisconnectedModeRestartsFromViolatingPoint) {
  auto filter = Make(0.25, LinearMode::kDisconnected);
  const auto segments = RunPoints(
      filter.get(), {DataPoint::Scalar(0, 0), DataPoint::Scalar(1, 1),
                     DataPoint::Scalar(2, 5), DataPoint::Scalar(3, 9)});
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_FALSE(segments[1].connected_to_prev);
  EXPECT_DOUBLE_EQ(segments[1].t_start, 2.0);
  EXPECT_DOUBLE_EQ(segments[1].x_start[0], 5.0);
  EXPECT_DOUBLE_EQ(segments[1].x_end[0], 9.0);
}

TEST(LinearFilterTest, DisconnectedSegmentsNeverShareTimes) {
  auto filter = Make(0.1, LinearMode::kDisconnected);
  std::vector<DataPoint> points;
  for (int j = 0; j < 60; ++j) {
    points.push_back(DataPoint::Scalar(j, (j % 6) * 3.0));
  }
  const auto segments = RunPoints(filter.get(), points);
  ASSERT_GT(segments.size(), 1u);
  for (size_t k = 1; k < segments.size(); ++k) {
    EXPECT_GT(segments[k].t_start, segments[k - 1].t_end);
  }
}

TEST(LinearFilterTest, ExactEpsilonBoundaryIsAccepted) {
  auto filter = Make(1.0);
  // Prediction at t=2 is 0; value 1.0 == ε, accepted.
  const auto segments = RunPoints(
      filter.get(), {DataPoint::Scalar(0, 0), DataPoint::Scalar(1, 0),
                     DataPoint::Scalar(2, 1.0)});
  EXPECT_EQ(segments.size(), 1u);
}

TEST(LinearFilterTest, SinglePointStreamIsPointSegment) {
  auto filter = Make(1.0);
  const auto segments = RunPoints(filter.get(), {DataPoint::Scalar(4, 2)});
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_TRUE(segments[0].IsPoint());
  EXPECT_DOUBLE_EQ(segments[0].x_start[0], 2.0);
}

TEST(LinearFilterTest, TwoPointStreamIsOneSegment) {
  auto filter = Make(1.0);
  const auto segments =
      RunPoints(filter.get(), {DataPoint::Scalar(0, 1), DataPoint::Scalar(1, 9)});
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_DOUBLE_EQ(segments[0].x_end[0], 9.0);
}

TEST(LinearFilterTest, MultiDimensionalAllDimensionsMustFit) {
  auto filter =
      LinearFilter::Create(FilterOptions::Uniform(2, 0.5)).value();
  // Dim 0 follows slope 1, dim 1 follows slope -1; the third point matches
  // dim 0 but breaks dim 1.
  const auto segments = RunPoints(
      filter.get(),
      {DataPoint(0, {0.0, 0.0}), DataPoint(1, {1.0, -1.0}),
       DataPoint(2, {2.0, 3.0})});
  EXPECT_EQ(segments.size(), 2u);
}

TEST(LinearFilterTest, NonUniformTimestamps) {
  auto filter = Make(0.5);
  // Slope (10-0)/(5-0) = 2 predicts 14 at t=7; 14.2 within eps.
  const auto segments = RunPoints(
      filter.get(), {DataPoint::Scalar(0, 0), DataPoint::Scalar(5, 10),
                     DataPoint::Scalar(7, 14.2)});
  EXPECT_EQ(segments.size(), 1u);
}

TEST(LinearFilterTest, OutOfOrderTimestampRejected) {
  auto filter = Make(0.5);
  EXPECT_TRUE(filter->Append(DataPoint::Scalar(1, 0)).ok());
  EXPECT_EQ(filter->Append(DataPoint::Scalar(1, 1)).code(),
            StatusCode::kOutOfOrder);
  EXPECT_EQ(filter->Append(DataPoint::Scalar(0, 1)).code(),
            StatusCode::kOutOfOrder);
  // The filter remains usable with a corrected timestamp.
  EXPECT_TRUE(filter->Append(DataPoint::Scalar(2, 1)).ok());
}

TEST(LinearFilterTest, ConnectedChainHasOneDisconnectedStart) {
  auto filter = Make(0.1);
  std::vector<DataPoint> points;
  for (int j = 0; j < 80; ++j) {
    points.push_back(DataPoint::Scalar(j, (j % 8) * 2.0));
  }
  const auto segments = RunPoints(filter.get(), points);
  ASSERT_GT(segments.size(), 2u);
  size_t disconnected = 0;
  for (const Segment& seg : segments) disconnected += !seg.connected_to_prev;
  EXPECT_EQ(disconnected, 1u);
}

}  // namespace
}  // namespace plastream
