// Copyright (c) 2026 The plastream Authors. MIT license.
//
// Cross-validation tests: independent recomputation of internal results
// that the filters produce incrementally.
//
//  - Swing's recording slope (Eq. 5-6) against a brute-force clamped
//    least-squares solve over the interval's raw points.
//  - SegmentStore point queries against PiecewiseLinearFunction.
//  - Wire transport round trip over randomly generated segment chains
//    (independent of any filter).
//  - CSV round trips over random dimensionalities.

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/reconstruction.h"
#include "core/segment_store.h"
#include "core/swing_filter.h"
#include "geometry/point.h"
#include "io/csv.h"
#include "stream/channel.h"
#include "stream/receiver.h"
#include "stream/transmitter.h"

namespace plastream {
namespace {

// ---------------------------------------------------------------------------
// Swing recording = clamped least squares (Eq. 5-6)
// ---------------------------------------------------------------------------

TEST(CrossValidationTest, SwingRecordingMatchesBruteForceLsq) {
  Rng rng(901);
  const double eps = 0.7;
  Signal signal;
  double v = 0.0;
  for (int j = 0; j < 3000; ++j) {
    v += rng.Uniform(-1.0, 1.1);
    signal.points.push_back(DataPoint::Scalar(j, v));
  }
  auto filter = SwingFilter::Create(FilterOptions::Scalar(eps)).value();
  for (const DataPoint& p : signal.points) {
    ASSERT_TRUE(filter->Append(p).ok());
  }
  ASSERT_TRUE(filter->Finish().ok());
  const auto segments = filter->TakeSegments();
  ASSERT_GT(segments.size(), 5u);

  size_t next = 1;  // the first data point is the first pivot
  for (size_t k = 0; k < segments.size(); ++k) {
    const double t0 = segments[k].t_start;
    const double x0 = segments[k].x_start[0];
    // Gather interval points and recompute slope bounds and LSQ directly.
    double lo = -std::numeric_limits<double>::infinity();
    double hi = std::numeric_limits<double>::infinity();
    double s1 = 0.0, s2 = 0.0;
    size_t count = 0;
    while (next < signal.size() &&
           signal.points[next].t <= segments[k].t_end) {
      const DataPoint& p = signal.points[next];
      const double dt = p.t - t0;
      lo = std::max(lo, (p.x[0] - eps - x0) / dt);
      hi = std::min(hi, (p.x[0] + eps - x0) / dt);
      s1 += (p.x[0] - x0) * dt;
      s2 += dt * dt;
      ++next;
      ++count;
    }
    ASSERT_GT(count, 0u) << "segment " << k;
    const double expected_slope = std::clamp(s1 / s2, lo, hi);
    const double actual_slope =
        (segments[k].x_end[0] - x0) / (segments[k].t_end - t0);
    EXPECT_NEAR(actual_slope, expected_slope, 1e-9) << "segment " << k;
  }
}

// The clamped-LSQ recording minimizes the interval's SSE among feasible
// slopes: perturbing the slope within bounds never reduces the error.
TEST(CrossValidationTest, SwingRecordingIsSseOptimalAmongFeasibleSlopes) {
  Rng rng(902);
  const double eps = 1.2;
  Signal signal;
  double v = 0.0;
  for (int j = 0; j < 800; ++j) {
    v += rng.Uniform(-1.0, 1.4);
    signal.points.push_back(DataPoint::Scalar(j, v));
  }
  auto filter = SwingFilter::Create(FilterOptions::Scalar(eps)).value();
  for (const DataPoint& p : signal.points) {
    ASSERT_TRUE(filter->Append(p).ok());
  }
  ASSERT_TRUE(filter->Finish().ok());
  const auto segments = filter->TakeSegments();

  size_t next = 1;
  for (const Segment& seg : segments) {
    std::vector<Point2> interval;
    while (next < signal.size() && signal.points[next].t <= seg.t_end) {
      interval.push_back({signal.points[next].t, signal.points[next].x[0]});
      ++next;
    }
    if (interval.size() < 3) continue;
    const double t0 = seg.t_start;
    const double x0 = seg.x_start[0];
    const double chosen = (seg.x_end[0] - x0) / (seg.t_end - t0);
    auto sse = [&](double slope) {
      double total = 0.0;
      for (const Point2& p : interval) {
        const double r = p.x - (x0 + slope * (p.t - t0));
        total += r * r;
      }
      return total;
    };
    const double base = sse(chosen);
    // Any feasible perturbation (still within eps of every point) must
    // not improve the SSE.
    for (const double delta : {-1e-3, 1e-3, -1e-2, 1e-2}) {
      const double candidate = chosen + delta;
      bool feasible = true;
      for (const Point2& p : interval) {
        if (std::abs(p.x - (x0 + candidate * (p.t - t0))) > eps) {
          feasible = false;
          break;
        }
      }
      if (feasible) {
        EXPECT_GE(sse(candidate) + 1e-9, base);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// SegmentStore vs PiecewiseLinearFunction
// ---------------------------------------------------------------------------

TEST(CrossValidationTest, StoreAndReconstructionAgreeEverywhere) {
  Rng rng(903);
  std::vector<Segment> chain;
  double t = 0.0;
  double last_end = 0.0;
  for (int k = 0; k < 50; ++k) {
    Segment seg;
    const bool connect = k > 0 && rng.Bernoulli(0.5);
    seg.t_start = connect ? t : t + rng.Uniform(0.1, 2.0);
    seg.t_end = seg.t_start + rng.Uniform(0.5, 5.0);
    seg.x_start = {connect ? last_end : rng.Uniform(-10.0, 10.0)};
    seg.x_end = {rng.Uniform(-10.0, 10.0)};
    seg.connected_to_prev = connect;
    t = seg.t_end;
    last_end = seg.x_end[0];
    chain.push_back(seg);
  }
  const auto fn = PiecewiseLinearFunction::Make(chain);
  ASSERT_TRUE(fn.ok());
  SegmentStore store(1);
  ASSERT_TRUE(store.AppendAll(chain).ok());

  Rng probe(904);
  for (int i = 0; i < 2000; ++i) {
    const double q = probe.Uniform(-1.0, t + 1.0);
    const auto from_fn = fn->Evaluate(q, 0);
    const auto from_store = store.ValueAt(q, 0);
    ASSERT_EQ(from_fn.ok(), from_store.ok()) << "t=" << q;
    if (from_fn.ok()) {
      EXPECT_DOUBLE_EQ(*from_fn, *from_store) << "t=" << q;
    }
  }
}

// ---------------------------------------------------------------------------
// Wire transport over random chains
// ---------------------------------------------------------------------------

TEST(CrossValidationTest, WireRoundTripOverRandomChains) {
  Rng rng(905);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t d = 1 + rng.UniformInt(4);
    std::vector<Segment> chain;
    double t = 0.0;
    std::vector<double> last_end(d, 0.0);
    const int n = 1 + static_cast<int>(rng.UniformInt(40));
    for (int k = 0; k < n; ++k) {
      Segment seg;
      const bool connect = k > 0 && rng.Bernoulli(0.4);
      seg.t_start = connect ? t : t + rng.Uniform(0.1, 1.0);
      const bool point_seg = !connect && rng.Bernoulli(0.1);
      seg.t_end = point_seg ? seg.t_start : seg.t_start + rng.Uniform(0.5, 3.0);
      seg.x_start.resize(d);
      seg.x_end.resize(d);
      for (size_t i = 0; i < d; ++i) {
        seg.x_start[i] = connect ? last_end[i] : rng.Uniform(-5.0, 5.0);
        seg.x_end[i] = point_seg ? seg.x_start[i] : rng.Uniform(-5.0, 5.0);
        last_end[i] = seg.x_end[i];
      }
      seg.connected_to_prev = connect;
      t = seg.t_end;
      chain.push_back(seg);
    }
    ASSERT_TRUE(ValidateSegmentChain(chain).ok()) << "trial " << trial;

    Channel channel;
    Transmitter tx(&channel);
    for (const Segment& seg : chain) tx.OnSegment(seg);
    Receiver rx;
    ASSERT_TRUE(rx.Poll(&channel).ok());
    ASSERT_TRUE(rx.FinishStream().ok());
    ASSERT_EQ(rx.segments().size(), chain.size()) << "trial " << trial;
    for (size_t k = 0; k < chain.size(); ++k) {
      EXPECT_EQ(rx.segments()[k].t_start, chain[k].t_start);
      EXPECT_EQ(rx.segments()[k].t_end, chain[k].t_end);
      EXPECT_EQ(rx.segments()[k].x_start, chain[k].x_start);
      EXPECT_EQ(rx.segments()[k].x_end, chain[k].x_end);
      EXPECT_EQ(rx.segments()[k].connected_to_prev,
                chain[k].connected_to_prev);
    }
    EXPECT_EQ(tx.records_sent(),
              CountRecordings(chain, RecordingCostModel::kPiecewiseLinear));
  }
}

// ---------------------------------------------------------------------------
// CSV round trips over random dimensionalities
// ---------------------------------------------------------------------------

TEST(CrossValidationTest, CsvRoundTripRandomSignals) {
  Rng rng(906);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t d = 1 + rng.UniformInt(6);
    Signal signal;
    double t = rng.Uniform(-100.0, 100.0);
    const int n = 1 + static_cast<int>(rng.UniformInt(300));
    for (int j = 0; j < n; ++j) {
      t += rng.Uniform(0.001, 10.0);
      std::vector<double> x(d);
      for (double& value : x) value = rng.Uniform(-1e6, 1e6);
      signal.points.emplace_back(t, std::move(x));
    }
    std::stringstream buffer;
    ASSERT_TRUE(WriteSignalCsv(buffer, signal).ok()) << "trial " << trial;
    const auto restored = ReadSignalCsv(buffer);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    ASSERT_EQ(restored->size(), signal.size());
    for (size_t j = 0; j < signal.size(); ++j) {
      EXPECT_EQ(restored->points[j], signal.points[j]);
    }
  }
}

}  // namespace
}  // namespace plastream
