// Copyright (c) 2026 The plastream Authors. MIT license.
//
// Integration tests for the sharded Pipeline: builder options, end-to-end
// equivalence across shard counts and execution modes (filter -> wire
// codec -> receiver -> SegmentStore), counter aggregation, and concurrent
// multi-producer ingest (a TSan CI target together with
// sharded_filter_bank_test).

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "stream/pipeline.h"

namespace plastream {
namespace {

std::vector<std::string> Hosts(size_t count) {
  std::vector<std::string> keys;
  for (size_t i = 0; i < count; ++i) {
    keys.push_back("host" + std::to_string(i) + ".load");
  }
  return keys;
}

double Sample(size_t key_index, int j) {
  return (j % 17) * 0.4 + key_index * 2.0 + (j % 5) * 0.1;
}

std::unique_ptr<Pipeline> BuildPipeline(size_t shards, bool threaded) {
  auto built = Pipeline::Builder()
                   .DefaultSpec("slide(eps=0.5)")
                   .Shards(shards)
                   .Threads(threaded)
                   .QueueCapacity(64)
                   .Build();
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

void Feed(Pipeline& pipeline, const std::vector<std::string>& keys,
          int points) {
  for (int j = 0; j < points; ++j) {
    for (size_t i = 0; i < keys.size(); ++i) {
      ASSERT_TRUE(pipeline.Append(keys[i], j, Sample(i, j)).ok());
    }
  }
}

TEST(ShardedPipelineTest, BuilderValidatesShardOptions) {
  EXPECT_EQ(Pipeline::Builder()
                .DefaultSpec("slide(eps=1)")
                .Shards(0)
                .Build()
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Pipeline::Builder()
                .DefaultSpec("slide(eps=1)")
                .Threads()
                .QueueCapacity(0)
                .Build()
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // QueueCapacity(0) is irrelevant without Threads().
  EXPECT_TRUE(Pipeline::Builder()
                  .DefaultSpec("slide(eps=1)")
                  .QueueCapacity(0)
                  .Build()
                  .ok());
}

// The acceptance-criteria property: the same key sequence through 1-shard
// and 8-shard pipelines (locked and threaded) yields identical per-key
// segment sequences, stats and archives.
TEST(ShardedPipelineTest, EndToEndIdenticalAcrossShardCountsAndModes) {
  const auto keys = Hosts(11);
  const int points = 300;

  const auto baseline = BuildPipeline(1, false);
  Feed(*baseline, keys, points);
  ASSERT_TRUE(baseline->Finish().ok());
  const auto baseline_stats = baseline->Stats();
  std::map<std::string, std::vector<Segment>> expected;
  for (const std::string& key : keys) {
    expected[key] = baseline->Segments(key).value();
    EXPECT_FALSE(expected[key].empty());
  }

  for (const size_t shards : {4u, 8u}) {
    for (const bool threaded : {false, true}) {
      auto pipeline = BuildPipeline(shards, threaded);
      EXPECT_EQ(pipeline->shard_count(), shards);
      Feed(*pipeline, keys, points);
      ASSERT_TRUE(pipeline->Finish().ok());

      for (const std::string& key : keys) {
        EXPECT_EQ(pipeline->Segments(key).value(), expected[key])
            << "key=" << key << " shards=" << shards
            << " threaded=" << threaded;
        // The archive saw the same chain.
        ASSERT_NE(pipeline->Store(key), nullptr);
        EXPECT_EQ(pipeline->Store(key)->segment_count(), expected[key].size());
      }

      // Transport accounting is deterministic too.
      const auto stats = pipeline->Stats();
      EXPECT_EQ(stats.streams, baseline_stats.streams);
      EXPECT_EQ(stats.points, baseline_stats.points);
      EXPECT_EQ(stats.segments, baseline_stats.segments);
      EXPECT_EQ(stats.records_sent, baseline_stats.records_sent);
      EXPECT_EQ(stats.bytes_sent, baseline_stats.bytes_sent);
    }
  }
}

TEST(ShardedPipelineTest, KeysAndSpecRoutingUnchangedBySharding) {
  auto pipeline = Pipeline::Builder()
                      .DefaultSpec("slide(eps=0.5)")
                      .PerKeySpec("special", "cache(eps=2)")
                      .Shards(8)
                      .Build()
                      .value();
  ASSERT_TRUE(pipeline->Append("special", 0, 1).ok());
  ASSERT_TRUE(pipeline->Append("normal", 0, 1).ok());
  ASSERT_TRUE(pipeline->Finish().ok());
  EXPECT_EQ(pipeline->GetFilter("special")->name(), "cache");
  EXPECT_EQ(pipeline->GetFilter("normal")->name(), "slide");
  const auto keys = pipeline->Keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "normal");
  EXPECT_EQ(keys[1], "special");
}

TEST(ShardedPipelineTest, AggregateCountersSumAcrossShards) {
  auto pipeline = Pipeline::Builder()
                      .DefaultSpec("slide(eps=0.25)")
                      .Shards(4)
                      .Build()
                      .value();
  const auto keys = Hosts(8);
  Feed(*pipeline, keys, 100);
  ASSERT_TRUE(pipeline->Finish().ok());
  // Every slide filter exposes these counters; the pipeline-level view
  // sums them by name across all streams and shards.
  const auto counters = pipeline->AggregateCounters();
  std::vector<std::string> names;
  for (const auto& counter : counters) names.push_back(counter.name);
  EXPECT_EQ(names, (std::vector<std::string>{
                       "connected_junctions", "max_hull_vertices",
                       "pinning_fallbacks", "unreported_points"}));
}

TEST(ShardedPipelineTest, FlushSurfacesDeferredErrorsInThreadedMode) {
  auto pipeline = BuildPipeline(1, true);
  ASSERT_TRUE(pipeline->Append("a", 10, 0).ok());
  ASSERT_TRUE(pipeline->Append("a", 5, 0).ok());  // out of order, async
  EXPECT_EQ(pipeline->Flush().code(), StatusCode::kOutOfOrder);
}

TEST(ShardedPipelineTest, FlushMakesMidStreamReadsSafeInThreadedMode) {
  auto pipeline = BuildPipeline(4, true);
  const auto keys = Hosts(6);
  Feed(*pipeline, keys, 200);
  ASSERT_TRUE(pipeline->Flush().ok());
  // After Flush every enqueued point has been filtered, transported and
  // archived; mid-stream reads are coherent.
  size_t points = 0;
  for (const std::string& key : keys) {
    points += pipeline->StatsFor(key)->points;
    EXPECT_GT(pipeline->Segments(key)->size(), 0u);
  }
  EXPECT_EQ(points, keys.size() * 200);
  ASSERT_TRUE(pipeline->Finish().ok());
}

// Concurrent multi-producer ingest through the full pipeline; the TSan CI
// configuration runs this against both execution modes.
TEST(ShardedPipelineTest, ConcurrentProducersEndToEnd) {
  for (const bool threaded : {false, true}) {
    auto pipeline = BuildPipeline(8, threaded);
    constexpr int kProducers = 4;
    constexpr int kKeysPerProducer = 4;
    constexpr int kPoints = 250;
    std::atomic<int> failures{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&pipeline, &failures, p] {
        for (int j = 0; j < kPoints; ++j) {
          for (int k = 0; k < kKeysPerProducer; ++k) {
            const std::string key =
                "prod" + std::to_string(p) + ".metric" + std::to_string(k);
            if (!pipeline->Append(key, j, (j % 9) * 0.7 + k).ok()) ++failures;
          }
        }
      });
    }
    for (auto& producer : producers) producer.join();
    EXPECT_EQ(failures.load(), 0);
    ASSERT_TRUE(pipeline->Finish().ok());

    const auto stats = pipeline->Stats();
    EXPECT_EQ(stats.streams,
              static_cast<size_t>(kProducers * kKeysPerProducer));
    EXPECT_EQ(stats.points,
              static_cast<size_t>(kProducers * kKeysPerProducer * kPoints));
    // Every stream made it through the wire into a queryable archive.
    for (const std::string& key : pipeline->Keys()) {
      ASSERT_NE(pipeline->Store(key), nullptr);
      EXPECT_GT(pipeline->Store(key)->segment_count(), 0u);
      EXPECT_TRUE(pipeline->Reconstruction(key).ok());
    }
  }
}

}  // namespace
}  // namespace plastream
