// Copyright (c) 2026 The plastream Authors. MIT license.
//
// Unit tests for the error-gated Kalman baseline ([15], Jain et al.).

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/kalman_filter.h"
#include "core/reconstruction.h"
#include "datagen/shapes.h"
#include "eval/metrics.h"
#include "eval/runner.h"

namespace plastream {
namespace {

std::unique_ptr<KalmanFilter> Make(double eps,
                                   KalmanOptions kalman = KalmanOptions{}) {
  return KalmanFilter::Create(FilterOptions::Scalar(eps), kalman).value();
}

std::vector<Segment> RunPoints(KalmanFilter* filter,
                               const std::vector<DataPoint>& points) {
  for (const DataPoint& p : points) EXPECT_TRUE(filter->Append(p).ok());
  EXPECT_TRUE(filter->Finish().ok());
  return filter->TakeSegments();
}

TEST(KalmanFilterTest, CreateValidatesNoiseParameters) {
  KalmanOptions bad;
  bad.process_noise = 0.0;
  EXPECT_FALSE(KalmanFilter::Create(FilterOptions::Scalar(1.0), bad).ok());
  bad = KalmanOptions{};
  bad.measurement_noise = -1.0;
  EXPECT_FALSE(KalmanFilter::Create(FilterOptions::Scalar(1.0), bad).ok());
}

TEST(KalmanFilterTest, ConstantSignalIsOneSegment) {
  auto filter = Make(0.5);
  std::vector<DataPoint> points;
  for (int j = 0; j < 200; ++j) points.push_back(DataPoint::Scalar(j, 7.0));
  const auto segments = RunPoints(filter.get(), points);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_DOUBLE_EQ(segments[0].x_start[0], 7.0);
  EXPECT_DOUBLE_EQ(segments[0].x_end[0], 7.0);
}

TEST(KalmanFilterTest, PrecisionGuaranteeOnNoisySine) {
  Rng rng(81);
  Signal signal;
  for (int j = 0; j < 3000; ++j) {
    const double v =
        10.0 * std::sin(j * 0.02) + rng.Gaussian(0.0, 0.05);
    signal.points.push_back(DataPoint::Scalar(j, v));
  }
  const double eps = 0.5;
  auto filter = Make(eps);
  for (const DataPoint& p : signal.points) {
    ASSERT_TRUE(filter->Append(p).ok());
  }
  ASSERT_TRUE(filter->Finish().ok());
  const auto segments = filter->TakeSegments();
  ASSERT_TRUE(ValidateSegmentChain(segments).ok());
  const auto approx = PiecewiseLinearFunction::Make(segments);
  ASSERT_TRUE(approx.ok());
  const std::vector<double> epsilon{eps};
  EXPECT_TRUE(VerifyPrecision(signal, *approx, epsilon).ok());
}

TEST(KalmanFilterTest, ViolatingSampleLandsOnNewSegmentStart) {
  auto filter = Make(0.1);
  const auto segments = RunPoints(
      filter.get(), {DataPoint::Scalar(0, 0), DataPoint::Scalar(1, 0),
                     DataPoint::Scalar(2, 5), DataPoint::Scalar(3, 5)});
  ASSERT_GE(segments.size(), 2u);
  EXPECT_DOUBLE_EQ(segments[1].t_start, 2.0);
  EXPECT_DOUBLE_EQ(segments[1].x_start[0], 5.0);  // pinned to measurement
}

TEST(KalmanFilterTest, VelocityLearningImprovesOverCacheBehavior) {
  // A steady ramp: the first segment is flat (velocity prior 0), but after
  // a few corrections the velocity estimate approaches the true slope and
  // segments grow longer.
  auto filter = Make(0.3);
  std::vector<DataPoint> points;
  for (int j = 0; j < 400; ++j) {
    points.push_back(DataPoint::Scalar(j, 0.25 * j));
  }
  const auto segments = RunPoints(filter.get(), points);
  ASSERT_GE(segments.size(), 2u);
  const Segment& first = segments.front();
  const Segment& last = segments.back();
  EXPECT_GT(last.t_end - last.t_start, first.t_end - first.t_start);
  // The learned slope of the last stretch is near the true 0.25.
  const double slope = (last.x_end[0] - last.x_start[0]) /
                       (last.t_end - last.t_start);
  EXPECT_NEAR(slope, 0.25, 0.05);
}

TEST(KalmanFilterTest, MultiDimensionalGating) {
  auto filter =
      KalmanFilter::Create(FilterOptions::Uniform(2, 0.5)).value();
  std::vector<DataPoint> points{DataPoint(0, {0.0, 0.0}),
                                DataPoint(1, {0.1, 0.1}),
                                DataPoint(2, {0.2, 9.0})};  // dim 1 breaks
  for (const DataPoint& p : points) ASSERT_TRUE(filter->Append(p).ok());
  ASSERT_TRUE(filter->Finish().ok());
  EXPECT_EQ(filter->TakeSegments().size(), 2u);
}

TEST(KalmanFilterTest, RunnerIntegration) {
  const Signal line = *GenerateLine(500, 1.0, 0.1);
  const auto run = RunFilter(FilterSpec{.family = "kalman"},
                             FilterOptions::Scalar(0.5), line);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(run->compression.ratio, 1.0);
}

TEST(KalmanFilterTest, EmptyAndSinglePoint) {
  auto filter = Make(1.0);
  ASSERT_TRUE(filter->Finish().ok());
  EXPECT_TRUE(filter->TakeSegments().empty());
  auto filter2 = Make(1.0);
  ASSERT_TRUE(filter2->Append(DataPoint::Scalar(3, 4)).ok());
  ASSERT_TRUE(filter2->Finish().ok());
  const auto segments = filter2->TakeSegments();
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_TRUE(segments[0].IsPoint());
}

}  // namespace
}  // namespace plastream
