// Copyright (c) 2026 The plastream Authors. MIT license.
//
// FrameSplitter: incremental reassembly of length-prefixed frames from an
// arbitrarily fragmented byte stream — the property the network transport
// depends on is that EVERY split of the same byte stream yields the same
// frame sequence.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "stream/frame_splitter.h"
#include "transport/net_protocol.h"

namespace plastream {
namespace {

std::vector<uint8_t> Bytes(std::initializer_list<int> values) {
  std::vector<uint8_t> bytes;
  for (int v : values) bytes.push_back(static_cast<uint8_t>(v));
  return bytes;
}

// Three frames of different sizes, concatenated as they would cross a
// socket.
std::vector<uint8_t> SampleStream(std::vector<std::vector<uint8_t>>* frames) {
  frames->clear();
  frames->push_back(Bytes({0x01}));
  frames->push_back(Bytes({0xDE, 0xAD, 0xBE, 0xEF, 0x42}));
  std::vector<uint8_t> big;
  for (int i = 0; i < 300; ++i) big.push_back(static_cast<uint8_t>(i));
  frames->push_back(big);
  std::vector<uint8_t> stream;
  for (const auto& frame : *frames) AppendNetMessage(&stream, frame);
  return stream;
}

TEST(FrameSplitterTest, ReassemblesWholeStreamInOneFeed) {
  std::vector<std::vector<uint8_t>> expected;
  const std::vector<uint8_t> stream = SampleStream(&expected);
  FrameSplitter splitter;
  ASSERT_TRUE(splitter.Feed(stream).ok());
  for (const auto& frame : expected) {
    ASSERT_TRUE(splitter.HasFrame());
    const std::span<const uint8_t> got = splitter.NextFrame();
    EXPECT_EQ(std::vector<uint8_t>(got.begin(), got.end()), frame);
  }
  EXPECT_FALSE(splitter.HasFrame());
  EXPECT_EQ(splitter.frames_split(), expected.size());
  EXPECT_EQ(splitter.buffered_bytes(), 0u);
}

TEST(FrameSplitterTest, EverySplitPointYieldsTheSameFrames) {
  // The satellite contract: cut the byte stream at every possible
  // boundary and reassemble both halves — the frames must always match.
  std::vector<std::vector<uint8_t>> expected;
  const std::vector<uint8_t> stream = SampleStream(&expected);
  for (size_t cut = 0; cut <= stream.size(); ++cut) {
    FrameSplitter splitter;
    ASSERT_TRUE(
        splitter.Feed(std::span<const uint8_t>(stream.data(), cut)).ok());
    std::vector<std::vector<uint8_t>> got;
    while (splitter.HasFrame()) {
      const std::span<const uint8_t> frame = splitter.NextFrame();
      got.emplace_back(frame.begin(), frame.end());
    }
    ASSERT_TRUE(splitter
                    .Feed(std::span<const uint8_t>(stream.data() + cut,
                                                   stream.size() - cut))
                    .ok());
    while (splitter.HasFrame()) {
      const std::span<const uint8_t> frame = splitter.NextFrame();
      got.emplace_back(frame.begin(), frame.end());
    }
    ASSERT_EQ(got, expected) << "stream cut at byte " << cut;
  }
}

TEST(FrameSplitterTest, ByteAtATimeDelivery) {
  std::vector<std::vector<uint8_t>> expected;
  const std::vector<uint8_t> stream = SampleStream(&expected);
  FrameSplitter splitter;
  std::vector<std::vector<uint8_t>> got;
  for (const uint8_t byte : stream) {
    ASSERT_TRUE(splitter.Feed(std::span<const uint8_t>(&byte, 1)).ok());
    while (splitter.HasFrame()) {
      const std::span<const uint8_t> frame = splitter.NextFrame();
      got.emplace_back(frame.begin(), frame.end());
    }
  }
  EXPECT_EQ(got, expected);
}

TEST(FrameSplitterTest, RejectsOversizedLength) {
  FrameSplitter splitter(/*max_frame_bytes=*/16);
  std::vector<uint8_t> stream;
  AppendNetMessage(&stream, Bytes({1, 2, 3}));  // fits
  // A 17-byte length prefix exceeds the 16-byte bound.
  stream.insert(stream.end(), {17, 0, 0, 0});
  const Status status = splitter.Feed(stream);
  EXPECT_EQ(status.code(), StatusCode::kCorruption) << status.message();
  // The frame before the corrupt prefix is still retrievable.
  ASSERT_TRUE(splitter.HasFrame());
  const std::span<const uint8_t> frame = splitter.NextFrame();
  EXPECT_EQ(std::vector<uint8_t>(frame.begin(), frame.end()),
            Bytes({1, 2, 3}));
  // Corruption is sticky: further feeds keep failing.
  EXPECT_EQ(splitter.Feed(Bytes({0})).code(), StatusCode::kCorruption);
  EXPECT_FALSE(splitter.status().ok());
}

TEST(FrameSplitterTest, RejectsZeroLength) {
  FrameSplitter splitter;
  EXPECT_EQ(splitter.Feed(Bytes({0, 0, 0, 0})).code(), StatusCode::kCorruption);
}

TEST(FrameSplitterTest, ResetClearsCorruptionAndBuffer) {
  FrameSplitter splitter;
  ASSERT_EQ(splitter.Feed(Bytes({0, 0, 0, 0})).code(), StatusCode::kCorruption);
  splitter.Reset();
  EXPECT_TRUE(splitter.status().ok());
  EXPECT_EQ(splitter.buffered_bytes(), 0u);
  std::vector<uint8_t> stream;
  AppendNetMessage(&stream, Bytes({9}));
  ASSERT_TRUE(splitter.Feed(stream).ok());
  ASSERT_TRUE(splitter.HasFrame());
}

}  // namespace
}  // namespace plastream
