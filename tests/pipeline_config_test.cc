// Copyright (c) 2026 The plastream Authors. MIT license.
//
// Config-file loading for Pipeline::Builder: INI parsing, prefix-wildcard
// key patterns, [pipeline] keys, and the file:line error context that
// surfaces at Build().

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "plastream.h"

namespace plastream {
namespace {

constexpr const char* kConfig = R"(
# collector config
web-*     = slide(eps=0.5)
db-1.iops = swing(eps=2)
db-*      = slide(eps=1)
*         = slide(eps=0.1)

[pipeline]
codec   = delta(varint=true)   ; compact wire format
shards  = 4
)";

TEST(PipelineConfigTest, ParsesSectionsPatternsAndDefaults) {
  auto pipeline =
      Pipeline::Builder().FromConfigString(kConfig).Build().value();
  EXPECT_EQ(pipeline->shard_count(), 4u);
  EXPECT_EQ(pipeline->CodecSpec().Format(), "delta(varint=true)");
  // Exact beats prefix beats default; longest prefix wins.
  EXPECT_EQ(pipeline->SpecFor("web-1.cpu")->Format(), "slide(eps=0.5)");
  EXPECT_EQ(pipeline->SpecFor("db-1.iops")->Format(), "swing(eps=2)");
  EXPECT_EQ(pipeline->SpecFor("db-2.iops")->Format(), "slide(eps=1)");
  EXPECT_EQ(pipeline->SpecFor("host9.mem")->Format(), "slide(eps=0.1)");
}

TEST(PipelineConfigTest, LongestPrefixWinsRegardlessOfOrder) {
  auto pipeline = Pipeline::Builder()
                      .FromConfigString("a* = slide(eps=1)\n"
                                        "a.b.* = slide(eps=2)\n"
                                        "a.* = slide(eps=3)\n")
                      .Build()
                      .value();
  EXPECT_EQ(pipeline->SpecFor("a.b.c")->Format(), "slide(eps=2)");
  EXPECT_EQ(pipeline->SpecFor("a.x")->Format(), "slide(eps=3)");
  EXPECT_EQ(pipeline->SpecFor("ax")->Format(), "slide(eps=1)");
  EXPECT_EQ(pipeline->SpecFor("zz").status().code(), StatusCode::kNotFound);
}

TEST(PipelineConfigTest, StorageKeyBuildsTheBackend) {
  const std::string path =
      ::testing::TempDir() + "plastream_config_storage.plar";
  std::remove(path.c_str());
  auto pipeline = Pipeline::Builder()
                      .FromConfigString("[pipeline]\n"
                                        "storage = file(path=" +
                                        path +
                                        ",codec=frame)\n"
                                        "[streams]\n"
                                        "* = cache(eps=1)\n")
                      .Build()
                      .value();
  ASSERT_TRUE(pipeline->Append("k", 0.0, 1.0).ok());
  ASSERT_TRUE(pipeline->Finish().ok());
  EXPECT_EQ(pipeline->StorageSpec().family, "file");
  auto reader = SegmentArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->stream_count(), 1u);
  std::remove(path.c_str());
}

TEST(PipelineConfigTest, ErrorsCarryContextAndLineNumbers) {
  const auto built = Pipeline::Builder()
                         .FromConfigString("* = slide(eps=0.1)\n"
                                           "web = not-a-filter(\n",
                                           "prod.conf")
                         .Build();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(built.status().message().find("prod.conf:2"), std::string::npos)
      << built.status().message();
}

TEST(PipelineConfigTest, RejectsMalformedLines) {
  const char* const bad_configs[] = {
      "just a line\n",                    // no '='
      "= slide(eps=1)\n",                 // empty key
      "web = \n",                         // empty value
      "[turbines]\n",                     // unknown section
      "[pipeline]\nspeed = 9\n",          // unknown pipeline key
      "[pipeline]\nshards = zero\n",      // non-numeric shards
      "[pipeline]\nshards = 0\n",         // zero shards
      "a*b = slide(eps=1)\n",             // infix wildcard
      "[pipeline]\ncodec = nope(\n",      // bad codec spec
      "[pipeline]\ntransport = tcp(\n",   // bad transport spec
  };
  for (const char* config : bad_configs) {
    Pipeline::Builder builder;
    builder.DefaultSpec("cache(eps=1)").FromConfigString(config);
    EXPECT_EQ(builder.Build().status().code(), StatusCode::kInvalidArgument)
        << config;
  }
}

TEST(PipelineConfigTest, FromConfigFileReadsAndReportsMissing) {
  const std::string path = ::testing::TempDir() + "plastream_test.conf";
  {
    std::ofstream file(path);
    file << kConfig;
  }
  auto pipeline =
      Pipeline::Builder().FromConfigFile(path).Build().value();
  EXPECT_EQ(pipeline->shard_count(), 4u);
  std::remove(path.c_str());

  EXPECT_EQ(Pipeline::Builder()
                .FromConfigFile(::testing::TempDir() + "no_such.conf")
                .Build()
                .status()
                .code(),
            StatusCode::kIOError);
}

TEST(PipelineConfigTest, TransportKeySelectsTheTransport) {
  // A collector to dial — Build() connects the configured transport.
  const std::string sock =
      ::testing::TempDir() + "plastream_config_transport.sock";
  auto server = CollectorServer::Listen("uds(path=" + sock + ")").value();
  std::thread serving([&] { ASSERT_TRUE(server->Serve().ok()); });

  auto pipeline = Pipeline::Builder()
                      .FromConfigString("[pipeline]\n"
                                        "transport = uds(path=" +
                                        sock +
                                        ")\n"
                                        "[streams]\n"
                                        "* = slide(eps=1)\n")
                      .Build()
                      .value();
  EXPECT_TRUE(pipeline->remote());
  EXPECT_EQ(pipeline->TransportSpec().family, "uds");
  ASSERT_TRUE(pipeline->Append("k", 0.0, 1.0).ok());
  ASSERT_TRUE(pipeline->Finish().ok());
  EXPECT_EQ(server->Segments("k").value().size(), 1u);

  server->Shutdown();
  serving.join();
  std::remove(sock.c_str());
}

TEST(PipelineConfigTest, TransportErrorsCarryFileAndLine) {
  const auto built = Pipeline::Builder()
                         .FromConfigString("* = slide(eps=0.1)\n"
                                           "[pipeline]\n"
                                           "transport = tcp(\n",
                                           "prod.conf")
                         .Build();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(built.status().message().find("prod.conf:3"), std::string::npos)
      << built.status().message();
}

TEST(PipelineConfigTest, PrefixSpecValidatedAtBuild) {
  // Prefix specs go through the same build-time filter validation as
  // exact specs.
  EXPECT_EQ(Pipeline::Builder()
                .PrefixSpec("web-", "warp(eps=1)")
                .Build()
                .status()
                .code(),
            StatusCode::kNotFound);
  // A builder with only prefix specs is buildable.
  auto pipeline =
      Pipeline::Builder().PrefixSpec("web-", "slide(eps=0.5)").Build();
  ASSERT_TRUE(pipeline.ok());
  EXPECT_TRUE((*pipeline)->Append("web-1.cpu", 0.0, 1.0).ok());
  EXPECT_EQ((*pipeline)->Append("db-1.iops", 0.0, 1.0).code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace plastream
