// Copyright (c) 2026 The plastream Authors. MIT license.
//
// Unit tests for the swing filter (Section 3, Algorithm 1), including the
// worked Example 3.1 from the paper and the clamped least-squares recording
// rule (Eq. 5-6).

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/swing_filter.h"

namespace plastream {
namespace {

std::unique_ptr<SwingFilter> Make(double eps) {
  return SwingFilter::Create(FilterOptions::Scalar(eps)).value();
}

std::vector<Segment> RunPoints(SwingFilter* filter,
                         const std::vector<DataPoint>& points) {
  for (const DataPoint& p : points) EXPECT_TRUE(filter->Append(p).ok());
  EXPECT_TRUE(filter->Finish().ok());
  return filter->TakeSegments();
}

// Paper Example 3.1 / Figure 3: the swing filter represents (t4,X4) that a
// linear filter cannot, because u can still swing down to accommodate it.
TEST(SwingFilterTest, PaperExampleCapturesFourthPoint) {
  // Reconstruction of the figure's pattern: points that drift away from the
  // initial line but stay inside the swung bounds. eps = 1.
  // u1 after (t2): through (0,0)-(1,1+1)=slope 2; l1: slope 0.
  // (2, 3.5): within [l(2)-1, u(2)+1] = [-1, 5] -> accepted; swings
  //   l up to slope (3.5-1)/2 = 1.25 and u down to... 3.5 < u(2)-1 = 3 is
  //   false, u unchanged (slope 2).
  // (3, 3.2): bounds l(3)=3.75-eps=2.75 <= 3.2 <= u(3)+eps=7 -> accepted;
  //   3.2 < l(3) + eps so l unchanged? 3.2 > 2.75 yes but l swings only if
  //   point is more than eps above l: 3.2 - 3.75 < 0, no swing up; u swings
  //   down since 3.2 < 6 - 1: new u slope = (3.2+1)/3 = 1.4.
  auto filter = Make(1.0);
  EXPECT_TRUE(filter->Append(DataPoint::Scalar(0, 0.0)).ok());
  EXPECT_TRUE(filter->Append(DataPoint::Scalar(1, 1.0)).ok());
  EXPECT_TRUE(filter->Append(DataPoint::Scalar(2, 3.5)).ok());
  EXPECT_TRUE(filter->Append(DataPoint::Scalar(3, 3.2)).ok());
  EXPECT_TRUE(filter->Finish().ok());
  const auto segments = filter->TakeSegments();
  ASSERT_EQ(segments.size(), 1u);  // all four points in one interval
}

TEST(SwingFilterTest, AllSegmentsConnected) {
  Rng rng(5);
  auto filter = Make(0.4);
  std::vector<DataPoint> points;
  double v = 0.0;
  for (int j = 0; j < 500; ++j) {
    v += rng.Uniform(-2.0, 2.0);
    points.push_back(DataPoint::Scalar(j, v));
  }
  const auto segments = RunPoints(filter.get(), points);
  ASSERT_GT(segments.size(), 2u);
  for (size_t k = 1; k < segments.size(); ++k) {
    EXPECT_TRUE(segments[k].connected_to_prev);
    EXPECT_DOUBLE_EQ(segments[k].t_start, segments[k - 1].t_end);
    EXPECT_DOUBLE_EQ(segments[k].x_start[0], segments[k - 1].x_end[0]);
  }
}

TEST(SwingFilterTest, FirstSegmentStartsAtFirstPoint) {
  auto filter = Make(0.1);
  const auto segments = RunPoints(
      filter.get(), {DataPoint::Scalar(1, 5), DataPoint::Scalar(2, 6),
                     DataPoint::Scalar(3, 20), DataPoint::Scalar(4, 21)});
  ASSERT_GE(segments.size(), 1u);
  EXPECT_DOUBLE_EQ(segments[0].t_start, 1.0);
  EXPECT_DOUBLE_EQ(segments[0].x_start[0], 5.0);
}

TEST(SwingFilterTest, RecordingAtLastPointBeforeViolation) {
  auto filter = Make(0.1);
  const auto segments = RunPoints(
      filter.get(), {DataPoint::Scalar(0, 0), DataPoint::Scalar(1, 1),
                     DataPoint::Scalar(2, 2), DataPoint::Scalar(3, 50),
                     DataPoint::Scalar(4, 51)});
  // The jump to 50 violates at t=3, so the first recording lands at t=2;
  // the next interval's pivot near (2,2) cannot reach both 50 and 51, so a
  // second recording lands at t=3.
  ASSERT_EQ(segments.size(), 3u);
  EXPECT_DOUBLE_EQ(segments[0].t_end, 2.0);  // t_{j-1} of the violation
  EXPECT_DOUBLE_EQ(segments[1].t_end, 3.0);
}

// Eq. 5-6: with points on an exact line, the recording reproduces the line
// (the LSQ optimum is interior, no clamping needed).
TEST(SwingFilterTest, LsqRecoversExactLine) {
  auto filter = Make(0.5);
  std::vector<DataPoint> points;
  for (int j = 0; j <= 10; ++j) {
    points.push_back(DataPoint::Scalar(j, 3.0 + 2.0 * j));
  }
  const auto segments = RunPoints(filter.get(), points);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_NEAR(segments[0].x_end[0], 23.0, 1e-12);
}

// Eq. 5: the LSQ slope is clamped into [slope(l), slope(u)]. A run of
// equal values whose unclamped LSQ would be dragged by the pre-pivot
// history must still produce a feasible (in-bounds) recording.
TEST(SwingFilterTest, RecordingStaysWithinBounds) {
  Rng rng(17);
  auto filter = Make(0.25);
  std::vector<DataPoint> points;
  double v = 0.0;
  for (int j = 0; j < 2000; ++j) {
    v += rng.Uniform(-1.0, 1.5);
    points.push_back(DataPoint::Scalar(j, v));
  }
  const auto segments = RunPoints(filter.get(), points);
  // Every original point within eps of its covering segment is asserted by
  // the invariant suite; here we check the tighter property that interval
  // ends land within eps of the last point they approximate.
  for (size_t k = 0; k + 1 < segments.size(); ++k) {
    const double t = segments[k].t_end;
    // The recording time must coincide with some sample time.
    EXPECT_NEAR(t, std::round(t), 1e-9);
    const double recorded = segments[k].x_end[0];
    const double actual = points[static_cast<size_t>(std::lround(t))].x[0];
    EXPECT_LE(std::abs(recorded - actual), 0.25 + 1e-9);
  }
}

TEST(SwingFilterTest, SinglePointStreamIsPointSegment) {
  auto filter = Make(1.0);
  const auto segments = RunPoints(filter.get(), {DataPoint::Scalar(2, 7)});
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_TRUE(segments[0].IsPoint());
}

TEST(SwingFilterTest, TwoPointStreamIsOneExactSegment) {
  auto filter = Make(1.0);
  const auto segments =
      RunPoints(filter.get(), {DataPoint::Scalar(0, 0), DataPoint::Scalar(1, 4)});
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_DOUBLE_EQ(segments[0].x_start[0], 0.0);
  // LSQ through pivot (0,0) over {(1,4)}: slope 4, exact.
  EXPECT_DOUBLE_EQ(segments[0].x_end[0], 4.0);
}

TEST(SwingFilterTest, EmptyStream) {
  auto filter = Make(1.0);
  EXPECT_TRUE(filter->Finish().ok());
  EXPECT_TRUE(filter->TakeSegments().empty());
}

TEST(SwingFilterTest, ImmediateConsecutiveViolations) {
  // Alternating extremes force a violation on nearly every point; the
  // filter must keep producing well-formed connected segments.
  auto filter = Make(0.1);
  std::vector<DataPoint> points;
  for (int j = 0; j < 40; ++j) {
    points.push_back(DataPoint::Scalar(j, j % 2 == 0 ? 0.0 : 100.0));
  }
  const auto segments = RunPoints(filter.get(), points);
  EXPECT_TRUE(ValidateSegmentChain(segments).ok());
  EXPECT_GT(segments.size(), 10u);
}

TEST(SwingFilterTest, MultiDimensionalBoundsArePerDimension) {
  auto filter = SwingFilter::Create(FilterOptions::Uniform(2, 1.0)).value();
  // Dim 0 rises with slope 1, dim 1 stays flat: both fit one segment.
  std::vector<DataPoint> points;
  for (int j = 0; j < 20; ++j) {
    points.push_back(DataPoint(j, {static_cast<double>(j), 5.0}));
  }
  const auto segments = RunPoints(filter.get(), points);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_NEAR(segments[0].x_end[0], 19.0, 1e-9);
  EXPECT_NEAR(segments[0].x_end[1], 5.0, 1e-9);
}

TEST(SwingFilterTest, UnreportedPointsTracksIntervalSize) {
  auto filter = Make(100.0);
  EXPECT_EQ(filter->unreported_points(), 0u);
  EXPECT_TRUE(filter->Append(DataPoint::Scalar(0, 0)).ok());
  EXPECT_TRUE(filter->Append(DataPoint::Scalar(1, 1)).ok());
  EXPECT_TRUE(filter->Append(DataPoint::Scalar(2, 2)).ok());
  EXPECT_EQ(filter->unreported_points(), 2u);  // pivot itself was recorded
}

}  // namespace
}  // namespace plastream
