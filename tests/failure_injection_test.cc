// Copyright (c) 2026 The plastream Authors. MIT license.
//
// Failure-injection suite: malformed inputs, degenerate configurations and
// corrupted transport must surface Status errors (never UB, never a silent
// wrong answer), and filters must stay usable after rejected inputs.

#include <cctype>
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/cache_filter.h"
#include "core/linear_filter.h"
#include "core/slide_filter.h"
#include "core/swab.h"
#include "core/swing_filter.h"
#include "eval/runner.h"
#include "stream/channel.h"
#include "stream/codec.h"
#include "stream/receiver.h"

namespace plastream {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// Builds `spec` with its options replaced by `options`.
Result<std::unique_ptr<Filter>> MakeWith(FilterSpec spec,
                                         FilterOptions options) {
  spec.options = std::move(options);
  return MakeFilter(spec);
}

class AllFiltersFailureTest : public ::testing::TestWithParam<FilterSpec> {};

TEST_P(AllFiltersFailureTest, RejectsNaNValue) {
  auto filter = MakeWith(GetParam(), FilterOptions::Scalar(1.0)).value();
  EXPECT_EQ(filter->Append(DataPoint::Scalar(0, kNaN)).code(),
            StatusCode::kInvalidArgument);
}

TEST_P(AllFiltersFailureTest, RejectsInfiniteValue) {
  auto filter = MakeWith(GetParam(), FilterOptions::Scalar(1.0)).value();
  EXPECT_EQ(filter->Append(DataPoint::Scalar(0, kInf)).code(),
            StatusCode::kInvalidArgument);
}

TEST_P(AllFiltersFailureTest, RejectsNaNTimestamp) {
  auto filter = MakeWith(GetParam(), FilterOptions::Scalar(1.0)).value();
  EXPECT_EQ(filter->Append(DataPoint(kNaN, {0.0})).code(),
            StatusCode::kInvalidArgument);
}

TEST_P(AllFiltersFailureTest, RejectsDimensionMismatch) {
  auto filter = MakeWith(GetParam(), FilterOptions::Scalar(1.0)).value();
  EXPECT_EQ(filter->Append(DataPoint(0, {1.0, 2.0})).code(),
            StatusCode::kInvalidArgument);
  auto filter2 =
      MakeWith(GetParam(), FilterOptions::Uniform(2, 1.0)).value();
  EXPECT_EQ(filter2->Append(DataPoint::Scalar(0, 1.0)).code(),
            StatusCode::kInvalidArgument);
}

TEST_P(AllFiltersFailureTest, RejectsNonIncreasingTime) {
  auto filter = MakeWith(GetParam(), FilterOptions::Scalar(1.0)).value();
  ASSERT_TRUE(filter->Append(DataPoint::Scalar(10, 0)).ok());
  EXPECT_EQ(filter->Append(DataPoint::Scalar(10, 0)).code(),
            StatusCode::kOutOfOrder);
  EXPECT_EQ(filter->Append(DataPoint::Scalar(9, 0)).code(),
            StatusCode::kOutOfOrder);
}

TEST_P(AllFiltersFailureTest, RecoversAfterRejectedPoint) {
  auto filter = MakeWith(GetParam(), FilterOptions::Scalar(1.0)).value();
  ASSERT_TRUE(filter->Append(DataPoint::Scalar(0, 0)).ok());
  ASSERT_FALSE(filter->Append(DataPoint::Scalar(1, kNaN)).ok());
  ASSERT_FALSE(filter->Append(DataPoint::Scalar(0, 1)).ok());
  // A valid continuation still works and produces a sane chain.
  ASSERT_TRUE(filter->Append(DataPoint::Scalar(1, 0.5)).ok());
  ASSERT_TRUE(filter->Append(DataPoint::Scalar(2, 1.0)).ok());
  ASSERT_TRUE(filter->Finish().ok());
  EXPECT_TRUE(ValidateSegmentChain(filter->TakeSegments()).ok());
}

TEST_P(AllFiltersFailureTest, AppendAfterFinishFails) {
  auto filter = MakeWith(GetParam(), FilterOptions::Scalar(1.0)).value();
  ASSERT_TRUE(filter->Append(DataPoint::Scalar(0, 0)).ok());
  ASSERT_TRUE(filter->Finish().ok());
  EXPECT_EQ(filter->Append(DataPoint::Scalar(1, 0)).code(),
            StatusCode::kFailedPrecondition);
  // Finish is idempotent.
  EXPECT_TRUE(filter->Finish().ok());
}

TEST_P(AllFiltersFailureTest, RejectsInvalidOptions) {
  FilterOptions empty;
  EXPECT_EQ(MakeWith(GetParam(), empty).status().code(),
            StatusCode::kInvalidArgument);
  FilterOptions negative;
  negative.epsilon = {1.0, -0.5};
  EXPECT_EQ(MakeWith(GetParam(), negative).status().code(),
            StatusCode::kInvalidArgument);
  FilterOptions nan_eps;
  nan_eps.epsilon = {kNaN};
  EXPECT_EQ(MakeWith(GetParam(), nan_eps).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_P(AllFiltersFailureTest, RejectsUnknownParam) {
  FilterSpec spec = GetParam();
  spec.options = FilterOptions::Scalar(1.0);
  spec.params["no_such_knob"] = "1";
  EXPECT_EQ(MakeFilter(spec).status().code(), StatusCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(
    EveryVariant, AllFiltersFailureTest,
    ::testing::ValuesIn(AllFilterVariants()),
    [](const ::testing::TestParamInfo<FilterSpec>& info) {
      std::string name = info.param.Label();
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(SwabFailureTest, MirrorsFilterValidation) {
  SwabOptions options;
  options.base = FilterOptions::Scalar(1.0);
  options.buffer_capacity = 1;
  EXPECT_EQ(SwabSegmenter::Create(options).status().code(),
            StatusCode::kInvalidArgument);
  options.buffer_capacity = 8;
  auto swab = SwabSegmenter::Create(options).value();
  EXPECT_EQ(swab->Append(DataPoint::Scalar(0, kNaN)).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(swab->Append(DataPoint::Scalar(0, 1.0)).ok());
  EXPECT_EQ(swab->Append(DataPoint::Scalar(0, 1.0)).code(),
            StatusCode::kOutOfOrder);
  ASSERT_TRUE(swab->Finish().ok());
  EXPECT_EQ(swab->Append(DataPoint::Scalar(1, 1.0)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(TransportFailureTest, EveryByteFlipIsDetected) {
  WireRecord record;
  record.type = WireRecordType::kProvisionalLine;
  record.t = 3.25;
  record.x = {1.0, 2.0};
  record.slope = {0.5, -0.5};
  const auto frame = EncodeWireRecord(record);
  for (size_t offset = 0; offset < frame.size(); ++offset) {
    for (const uint8_t mask : {0x01, 0x80}) {
      auto corrupted = frame;
      corrupted[offset] ^= mask;
      EXPECT_FALSE(DecodeWireRecord(corrupted).ok())
          << "offset " << offset << " mask " << int(mask);
    }
  }
}

TEST(TransportFailureTest, ReceiverStopsAtCorruptFrameButKeepsState) {
  Channel channel;
  WireRecord start;
  start.type = WireRecordType::kSegmentBreak;
  start.t = 0.0;
  start.x = {1.0};
  WireRecord end = start;
  end.type = WireRecordType::kSegmentPoint;
  end.t = 1.0;
  channel.Push(EncodeWireRecord(start));
  channel.Push(EncodeWireRecord(end));
  channel.CorruptLastFrame(3);
  Receiver rx;
  EXPECT_EQ(rx.Poll(&channel).code(), StatusCode::kCorruption);
  // The first (valid) record was applied before the corruption.
  EXPECT_EQ(rx.records_received(), 1u);
}

TEST(EdgeCaseTest, HugeTimestampsStayStable) {
  // Epoch-nanosecond-like magnitudes: anchored line representation must
  // not lose the ε guarantee to cancellation.
  const double t0 = 1.7e18;
  auto filter = SlideFilter::Create(FilterOptions::Scalar(0.5)).value();
  Signal signal;
  for (int j = 0; j < 500; ++j) {
    signal.points.push_back(
        DataPoint::Scalar(t0 + j * 1e6, std::sin(j * 0.1) * 10.0));
  }
  for (const DataPoint& p : signal.points) {
    ASSERT_TRUE(filter->Append(p).ok());
  }
  ASSERT_TRUE(filter->Finish().ok());
  const auto segments = filter->TakeSegments();
  EXPECT_TRUE(ValidateSegmentChain(segments).ok());
}

TEST(EdgeCaseTest, TinyEpsilonOnNoisyData) {
  auto filter = SlideFilter::Create(FilterOptions::Scalar(1e-12)).value();
  for (int j = 0; j < 100; ++j) {
    ASSERT_TRUE(
        filter->Append(DataPoint::Scalar(j, std::sin(j * 1.7))).ok());
  }
  ASSERT_TRUE(filter->Finish().ok());
  const auto segments = filter->TakeSegments();
  EXPECT_TRUE(ValidateSegmentChain(segments).ok());
  // Essentially every pair becomes its own segment.
  EXPECT_GT(segments.size(), 30u);
}

TEST(EdgeCaseTest, IdenticalValuesForever) {
  for (const FilterSpec& spec : AllFilterVariants()) {
    auto filter = MakeWith(spec, FilterOptions::Scalar(0.0)).value();
    for (int j = 0; j < 1000; ++j) {
      ASSERT_TRUE(filter->Append(DataPoint::Scalar(j, 42.0)).ok());
    }
    ASSERT_TRUE(filter->Finish().ok());
    const auto segments = filter->TakeSegments();
    EXPECT_EQ(segments.size(), 1u) << spec.Label();
  }
}

}  // namespace
}  // namespace plastream
