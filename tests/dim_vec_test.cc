// Copyright (c) 2026 The plastream Authors. MIT license.
//
// DimVec: the inline/spill boundary, copy/move semantics and vector-subset
// behavior the hot path depends on.

#include "core/dim_vec.h"

#include <span>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace plastream {
namespace {

TEST(DimVecTest, DefaultIsEmptyInline) {
  DimVec v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.capacity(), DimVec::kInlineCapacity);
}

TEST(DimVecTest, StaysInlineUpToCapacity) {
  DimVec v;
  for (size_t i = 0; i < DimVec::kInlineCapacity; ++i) {
    v.push_back(static_cast<double>(i));
    EXPECT_TRUE(v.is_inline()) << "spilled at " << i;
  }
  EXPECT_EQ(v.size(), DimVec::kInlineCapacity);
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v[i], static_cast<double>(i));
  }
}

TEST(DimVecTest, SpillsBeyondInlineCapacityAndPreservesValues) {
  DimVec v;
  const size_t n = DimVec::kInlineCapacity + 5;
  for (size_t i = 0; i < n; ++i) v.push_back(static_cast<double>(i) * 0.5);
  EXPECT_FALSE(v.is_inline());
  EXPECT_EQ(v.size(), n);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(v[i], static_cast<double>(i) * 0.5);
}

TEST(DimVecTest, ResizePreservesPrefixAndZeroFills) {
  DimVec v{1.0, 2.0, 3.0};
  v.resize(5);
  EXPECT_EQ(v, (DimVec{1.0, 2.0, 3.0, 0.0, 0.0}));
  v.resize(2);
  EXPECT_EQ(v, (DimVec{1.0, 2.0}));
  // Growing again after shrinking re-zeroes the exposed tail.
  v.resize(3);
  EXPECT_EQ(v, (DimVec{1.0, 2.0, 0.0}));
}

TEST(DimVecTest, ResizeAcrossTheSpillBoundary) {
  DimVec v{1.0, 2.0};
  v.resize(DimVec::kInlineCapacity + 3);
  EXPECT_FALSE(v.is_inline());
  EXPECT_EQ(v[0], 1.0);
  EXPECT_EQ(v[1], 2.0);
  EXPECT_EQ(v[DimVec::kInlineCapacity + 2], 0.0);
}

TEST(DimVecTest, AssignAndClearKeepCapacity) {
  DimVec v;
  v.assign(4, 7.5);
  EXPECT_EQ(v, (DimVec{7.5, 7.5, 7.5, 7.5}));
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_GE(v.capacity(), 4u);
}

TEST(DimVecTest, CopyInline) {
  DimVec a{1.0, 2.0, 3.0};
  DimVec b = a;
  EXPECT_EQ(a, b);
  b[0] = 9.0;
  EXPECT_EQ(a[0], 1.0);  // deep copy
}

TEST(DimVecTest, CopySpilled) {
  DimVec a;
  for (size_t i = 0; i < 20; ++i) a.push_back(static_cast<double>(i));
  DimVec b = a;
  EXPECT_EQ(a, b);
  EXPECT_NE(a.data(), b.data());
}

TEST(DimVecTest, CopyAssignReusesBuffer) {
  DimVec a;
  a.resize(20);  // heap buffer, capacity >= 20
  const double* buffer = a.data();
  DimVec small{1.0, 2.0};
  a = small;
  EXPECT_EQ(a, small);
  EXPECT_EQ(a.data(), buffer);  // no reallocation for a smaller payload
}

TEST(DimVecTest, MoveInlineCopiesAndEmptiesSource) {
  DimVec a{1.0, 2.0};
  DimVec b = std::move(a);
  EXPECT_EQ(b, (DimVec{1.0, 2.0}));
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): documented
  EXPECT_TRUE(a.is_inline());
}

TEST(DimVecTest, MoveSpilledStealsBuffer) {
  DimVec a;
  for (size_t i = 0; i < 20; ++i) a.push_back(static_cast<double>(i));
  const double* buffer = a.data();
  DimVec b = std::move(a);
  EXPECT_EQ(b.data(), buffer);  // stolen, not copied
  EXPECT_EQ(b.size(), 20u);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): documented
  EXPECT_TRUE(a.is_inline());
  a.push_back(1.0);  // the source remains usable
  EXPECT_EQ(a.size(), 1u);
}

TEST(DimVecTest, MoveAssignmentReleasesOldHeap) {
  DimVec a;
  a.resize(30);
  DimVec b;
  for (size_t i = 0; i < 20; ++i) b.push_back(2.0);
  a = std::move(b);
  EXPECT_EQ(a.size(), 20u);
  EXPECT_EQ(a[7], 2.0);
}

TEST(DimVecTest, Equality) {
  EXPECT_EQ(DimVec{}, DimVec{});
  EXPECT_EQ((DimVec{1.0, 2.0}), (DimVec{1.0, 2.0}));
  EXPECT_FALSE((DimVec{1.0, 2.0}) == (DimVec{1.0, 3.0}));
  EXPECT_FALSE((DimVec{1.0}) == (DimVec{1.0, 1.0}));
  // Inline vs spilled with equal contents still compares equal.
  DimVec spilled;
  spilled.reserve(20);
  spilled.push_back(1.0);
  spilled.push_back(2.0);
  EXPECT_EQ(spilled, (DimVec{1.0, 2.0}));
}

TEST(DimVecTest, VectorBridgeAndToVector) {
  const std::vector<double> source{3.0, 4.0, 5.0};
  DimVec v = source;  // implicit bridge
  EXPECT_EQ(v, (DimVec{3.0, 4.0, 5.0}));
  EXPECT_EQ(v.ToVector(), source);
}

TEST(DimVecTest, ConvertsToSpan) {
  DimVec v{1.0, 2.0, 3.0};
  const std::span<const double> s = v;
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[1], 2.0);
  EXPECT_EQ(s.data(), v.data());
}

TEST(DimVecTest, RangeForAndIterators) {
  DimVec v{1.0, 2.0, 3.0};
  double sum = 0.0;
  for (double x : v) sum += x;
  EXPECT_EQ(sum, 6.0);
  for (double& x : v) x *= 2.0;
  EXPECT_EQ(v, (DimVec{2.0, 4.0, 6.0}));
}

TEST(DimVecTest, SelfAssignment) {
  DimVec v{1.0, 2.0};
  DimVec& alias = v;
  v = alias;
  EXPECT_EQ(v, (DimVec{1.0, 2.0}));
  v = std::move(alias);
  EXPECT_EQ(v, (DimVec{1.0, 2.0}));
}

}  // namespace
}  // namespace plastream
