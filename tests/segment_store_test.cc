// Copyright (c) 2026 The plastream Authors. MIT license.
//
// Unit and property tests for SegmentStore: incremental chain validation,
// point/range queries, trapezoid integration, and threshold intervals.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/segment_store.h"
#include "core/slide_filter.h"
#include "datagen/sea_surface.h"
#include "datagen/shapes.h"
#include "eval/metrics.h"
#include "eval/runner.h"

namespace plastream {
namespace {

Segment MakeSegment(double t0, double t1, double x0, double x1,
                    bool connected = false) {
  Segment seg;
  seg.t_start = t0;
  seg.t_end = t1;
  seg.x_start = {x0};
  seg.x_end = {x1};
  seg.connected_to_prev = connected;
  return seg;
}

TEST(SegmentStoreTest, AppendValidatesIncrementally) {
  SegmentStore store(1);
  EXPECT_TRUE(store.Append(MakeSegment(0, 2, 0, 4)).ok());
  // Overlap.
  EXPECT_EQ(store.Append(MakeSegment(1, 3, 0, 1)).code(),
            StatusCode::kOutOfOrder);
  // Connected without sharing the junction.
  EXPECT_EQ(store.Append(MakeSegment(2, 4, 3.5, 0, true)).code(),
            StatusCode::kInvalidArgument);
  // Proper continuation.
  EXPECT_TRUE(store.Append(MakeSegment(2, 4, 4, 0, true)).ok());
  EXPECT_EQ(store.segment_count(), 2u);
  EXPECT_DOUBLE_EQ(store.t_min(), 0.0);
  EXPECT_DOUBLE_EQ(store.t_max(), 4.0);
}

TEST(SegmentStoreTest, RejectsBadFirstSegment) {
  SegmentStore store(1);
  EXPECT_EQ(store.Append(MakeSegment(0, 1, 0, 1, true)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store.Append(MakeSegment(2, 1, 0, 1)).code(),
            StatusCode::kInvalidArgument);
  Segment nan_seg = MakeSegment(0, 1, 0, 1);
  nan_seg.x_end[0] = std::nan("");
  EXPECT_EQ(store.Append(nan_seg).code(), StatusCode::kInvalidArgument);
  Segment wrong_dim = MakeSegment(0, 1, 0, 1);
  wrong_dim.x_start = {0.0, 0.0};
  wrong_dim.x_end = {1.0, 1.0};
  EXPECT_EQ(store.Append(wrong_dim).code(), StatusCode::kInvalidArgument);
}

TEST(SegmentStoreTest, ValueAtMatchesReconstruction) {
  SegmentStore store(1);
  ASSERT_TRUE(store.Append(MakeSegment(0, 10, 0, 20)).ok());
  ASSERT_TRUE(store.Append(MakeSegment(15, 20, 5, 5)).ok());
  EXPECT_DOUBLE_EQ(*store.ValueAt(5, 0), 10.0);
  EXPECT_DOUBLE_EQ(*store.ValueAt(17, 0), 5.0);
  EXPECT_EQ(store.ValueAt(12, 0).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.ValueAt(5, 3).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SegmentStoreTest, AggregateHandComputed) {
  SegmentStore store(1);
  // Ramp 0->10 over [0,10]: integral 50, mean 5, min 0, max 10.
  ASSERT_TRUE(store.Append(MakeSegment(0, 10, 0, 10)).ok());
  const auto agg = store.Aggregate(0, 10, 0);
  ASSERT_TRUE(agg.ok());
  EXPECT_DOUBLE_EQ(agg->integral, 50.0);
  EXPECT_DOUBLE_EQ(agg->mean, 5.0);
  EXPECT_DOUBLE_EQ(agg->min, 0.0);
  EXPECT_DOUBLE_EQ(agg->max, 10.0);
  EXPECT_DOUBLE_EQ(agg->covered_duration, 10.0);
  EXPECT_EQ(agg->segments_touched, 1u);
}

TEST(SegmentStoreTest, AggregateClipsToRange) {
  SegmentStore store(1);
  ASSERT_TRUE(store.Append(MakeSegment(0, 10, 0, 10)).ok());
  // Clip [4, 6]: values 4..6, integral 10, mean 5.
  const auto agg = store.Aggregate(4, 6, 0);
  ASSERT_TRUE(agg.ok());
  EXPECT_DOUBLE_EQ(agg->min, 4.0);
  EXPECT_DOUBLE_EQ(agg->max, 6.0);
  EXPECT_DOUBLE_EQ(agg->integral, 10.0);
  EXPECT_DOUBLE_EQ(agg->mean, 5.0);
}

TEST(SegmentStoreTest, AggregateSkipsGaps) {
  SegmentStore store(1);
  ASSERT_TRUE(store.Append(MakeSegment(0, 2, 1, 1)).ok());
  ASSERT_TRUE(store.Append(MakeSegment(8, 10, 3, 3)).ok());
  const auto agg = store.Aggregate(0, 10, 0);
  ASSERT_TRUE(agg.ok());
  EXPECT_DOUBLE_EQ(agg->covered_duration, 4.0);
  EXPECT_DOUBLE_EQ(agg->integral, 2.0 * 1 + 2.0 * 3);
  EXPECT_DOUBLE_EQ(agg->mean, 2.0);
  EXPECT_EQ(agg->segments_touched, 2u);
}

TEST(SegmentStoreTest, AggregateRangeInsideGapIsNotFound) {
  SegmentStore store(1);
  ASSERT_TRUE(store.Append(MakeSegment(0, 2, 1, 1)).ok());
  ASSERT_TRUE(store.Append(MakeSegment(8, 10, 3, 3)).ok());
  // Both a window and a single instant strictly inside the gap miss.
  EXPECT_EQ(store.Aggregate(3, 7, 0).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Aggregate(5, 5, 0).status().code(), StatusCode::kNotFound);
  // A range that merely *touches* a segment boundary does not miss.
  EXPECT_TRUE(store.Aggregate(2, 7, 0).ok());
}

TEST(SegmentStoreTest, AggregateAtJunctionInstant) {
  SegmentStore store(1);
  ASSERT_TRUE(store.Append(MakeSegment(0, 2, 0, 4)).ok());
  ASSERT_TRUE(store.Append(MakeSegment(2, 4, 4, 0, true)).ok());
  // t_begin == t_end == the junction: both segments touch, the covered
  // duration is zero, and the instant-query value is the junction value.
  const auto agg = store.Aggregate(2, 2, 0);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->segments_touched, 2u);
  EXPECT_DOUBLE_EQ(agg->covered_duration, 0.0);
  EXPECT_DOUBLE_EQ(agg->integral, 0.0);
  EXPECT_DOUBLE_EQ(agg->min, 4.0);
  EXPECT_DOUBLE_EQ(agg->max, 4.0);
  EXPECT_DOUBLE_EQ(agg->mean, 4.0);
}

TEST(SegmentStoreTest, AggregateSingleInstantInsideSegment) {
  SegmentStore store(1);
  ASSERT_TRUE(store.Append(MakeSegment(0, 10, 0, 10)).ok());
  const auto agg = store.Aggregate(5, 5, 0);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->segments_touched, 1u);
  EXPECT_DOUBLE_EQ(agg->covered_duration, 0.0);
  EXPECT_DOUBLE_EQ(agg->min, 5.0);
  EXPECT_DOUBLE_EQ(agg->max, 5.0);
  EXPECT_DOUBLE_EQ(agg->mean, 5.0);
  // The same instant at the very edges of coverage.
  EXPECT_DOUBLE_EQ(store.Aggregate(0, 0, 0)->mean, 0.0);
  EXPECT_DOUBLE_EQ(store.Aggregate(10, 10, 0)->mean, 10.0);
}

TEST(SegmentStoreTest, AggregateErrorsOnEmptyRange) {
  SegmentStore store(1);
  ASSERT_TRUE(store.Append(MakeSegment(0, 2, 1, 1)).ok());
  EXPECT_EQ(store.Aggregate(5, 7, 0).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Aggregate(7, 5, 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SegmentStoreTest, AggregateMatchesSineIntegral) {
  // Store a fine PLA of a sine wave and compare the trapezoid integral
  // against the closed form.
  SegmentStore store(1);
  const double period = 100.0;
  double prev_t = 0.0, prev_v = 0.0;
  for (int j = 1; j <= 400; ++j) {
    const double t = j * 0.5;
    const double v = std::sin(2 * M_PI * t / period);
    ASSERT_TRUE(store
                    .Append(MakeSegment(prev_t, t, prev_v, v,
                                        /*connected=*/j > 1))
                    .ok());
    prev_t = t;
    prev_v = v;
  }
  // Integral over two full periods is ~0; over a half period it is
  // period/pi.
  EXPECT_NEAR(store.Aggregate(0, 200, 0)->integral, 0.0, 1e-2);
  EXPECT_NEAR(store.Aggregate(0, 50, 0)->integral, period / M_PI, 2e-2);
  EXPECT_NEAR(store.Aggregate(0, 200, 0)->min, -1.0, 1e-3);
  EXPECT_NEAR(store.Aggregate(0, 200, 0)->max, 1.0, 1e-3);
}

TEST(SegmentStoreTest, IntervalsAboveSimpleCrossing) {
  SegmentStore store(1);
  // Triangle: up 0->10 over [0,10], down 10->0 over [10,20].
  ASSERT_TRUE(store.Append(MakeSegment(0, 10, 0, 10)).ok());
  ASSERT_TRUE(store.Append(MakeSegment(10, 20, 10, 0, true)).ok());
  const auto intervals = store.IntervalsAbove(5.0, 0, 20, 0);
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_DOUBLE_EQ(intervals[0].first, 5.0);
  EXPECT_DOUBLE_EQ(intervals[0].second, 15.0);
}

TEST(SegmentStoreTest, IntervalsAboveRespectsGapsAndClipping) {
  SegmentStore store(1);
  ASSERT_TRUE(store.Append(MakeSegment(0, 4, 8, 8)).ok());   // above
  ASSERT_TRUE(store.Append(MakeSegment(6, 10, 8, 8)).ok());  // above, after gap
  const auto intervals = store.IntervalsAbove(5.0, 1, 9, 0);
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_DOUBLE_EQ(intervals[0].first, 1.0);
  EXPECT_DOUBLE_EQ(intervals[0].second, 4.0);
  EXPECT_DOUBLE_EQ(intervals[1].first, 6.0);
  EXPECT_DOUBLE_EQ(intervals[1].second, 9.0);
}

TEST(SegmentStoreTest, IntervalsAboveNoneWhenBelow) {
  SegmentStore store(1);
  ASSERT_TRUE(store.Append(MakeSegment(0, 10, 1, 2)).ok());
  EXPECT_TRUE(store.IntervalsAbove(5.0, 0, 10, 0).empty());
  EXPECT_TRUE(store.IntervalsAbove(5.0, 20, 30, 0).empty());
}

// Integration: filter a real-shaped signal, archive it, and check the
// error-bounded analytics contract: the aggregate of the approximation is
// within epsilon of the aggregate of the raw samples.
TEST(SegmentStoreTest, ErrorBoundedAnalyticsOverFilteredSignal) {
  const Signal signal = *GenerateSeaSurfaceTemperature({});
  const double eps = signal.Range(0) * 0.02;
  const auto run = RunFilter(FilterSpec{.family = "slide"},
                             FilterOptions::Scalar(eps), signal)
                       .value();
  SegmentStore store(1);
  ASSERT_TRUE(store.AppendAll(run.segments).ok());

  // Compare means over a mid-trace window.
  const double t0 = 2000.0, t1 = 9000.0;
  double raw_sum = 0.0;
  size_t raw_count = 0;
  double raw_min = 1e300, raw_max = -1e300;
  for (const DataPoint& p : signal.points) {
    if (p.t < t0 || p.t > t1) continue;
    raw_sum += p.x[0];
    ++raw_count;
    raw_min = std::min(raw_min, p.x[0]);
    raw_max = std::max(raw_max, p.x[0]);
  }
  ASSERT_GT(raw_count, 0u);
  const auto agg = store.Aggregate(t0, t1, 0);
  ASSERT_TRUE(agg.ok());
  // Uniform sampling makes the time-weighted mean comparable to the raw
  // sample mean; both sides are epsilon-close pointwise.
  EXPECT_NEAR(agg->mean, raw_sum / raw_count, eps + 0.05);
  EXPECT_NEAR(agg->min, raw_min, eps + 1e-9);
  EXPECT_NEAR(agg->max, raw_max, eps + 1e-9);
}

TEST(SegmentStoreTest, MultiDimensionalQueries) {
  SegmentStore store(2);
  Segment seg;
  seg.t_start = 0;
  seg.t_end = 10;
  seg.x_start = {0.0, 100.0};
  seg.x_end = {10.0, 90.0};
  ASSERT_TRUE(store.Append(seg).ok());
  EXPECT_DOUBLE_EQ(*store.ValueAt(5, 0), 5.0);
  EXPECT_DOUBLE_EQ(*store.ValueAt(5, 1), 95.0);
  EXPECT_DOUBLE_EQ(store.Aggregate(0, 10, 1)->mean, 95.0);
}

}  // namespace
}  // namespace plastream
