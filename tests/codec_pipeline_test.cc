// Copyright (c) 2026 The plastream Authors. MIT license.
//
// End-to-end codec contract: for every registered codec, the
// Transmitter -> Channel -> Receiver round trip inside a Pipeline yields
// segments equal (Segment::operator==) to the filter's direct sink
// output — across filter families, shard counts, threaded mode and
// mid-stream Flush. Also covers the Builder::Codec surface itself.

#include <cctype>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/random_walk.h"
#include "plastream.h"

namespace plastream {
namespace {

const char* const kCodecSpecs[] = {
    "frame",
    "delta",
    "delta(varint=false)",
    "batch(n=1)",
    "batch(n=32,crc=crc32c)",
    "batch(n=500,crc=none)",
};

Signal Walk(uint64_t seed, double x0) {
  RandomWalkOptions o;
  o.count = 1500;
  o.max_delta = 1.0;
  o.x0 = x0;
  o.seed = seed;
  return *GenerateRandomWalk(o);
}

// The filter's ground truth: same spec, direct CollectingSink, no wire.
std::vector<Segment> DirectSegments(const std::string& filter_spec,
                                    const Signal& signal) {
  CollectingSink sink;
  auto filter = MakeFilter(filter_spec, &sink).value();
  for (const DataPoint& p : signal.points) {
    EXPECT_TRUE(filter->Append(p).ok());
  }
  EXPECT_TRUE(filter->Finish().ok());
  return sink.TakeSegments();
}

class CodecPipelineTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CodecPipelineTest, SegmentsEqualDirectSinkOutputAcrossShardModes) {
  const std::vector<std::string> filter_specs{
      "slide(eps=0.6)", "swing(eps=0.8)", "cache(eps=1.2)",
      "slide(eps=0.5,max_lag=64)"};
  std::vector<std::pair<std::string, Signal>> streams;
  std::vector<std::vector<Segment>> expected;
  for (size_t i = 0; i < filter_specs.size(); ++i) {
    streams.emplace_back("key-" + std::to_string(i), Walk(40 + i, i * 10.0));
    expected.push_back(DirectSegments(filter_specs[i], streams[i].second));
  }

  struct Mode {
    size_t shards;
    bool threaded;
  };
  for (const Mode mode : {Mode{1, false}, Mode{3, false}, Mode{2, true},
                          Mode{4, true}}) {
    Pipeline::Builder builder;
    builder.Codec(GetParam()).Shards(mode.shards).Threads(mode.threaded);
    for (size_t i = 0; i < filter_specs.size(); ++i) {
      builder.PerKeySpec(streams[i].first, filter_specs[i]);
    }
    auto pipeline = builder.Build().value();
    for (size_t j = 0; j < streams[0].second.size(); ++j) {
      for (const auto& [key, signal] : streams) {
        ASSERT_TRUE(pipeline->Append(key, signal.points[j]).ok());
      }
    }
    ASSERT_TRUE(pipeline->Finish().ok());
    for (size_t i = 0; i < streams.size(); ++i) {
      const auto received = pipeline->Segments(streams[i].first).value();
      EXPECT_EQ(received, expected[i])
          << "codec " << GetParam() << " shards " << mode.shards
          << (mode.threaded ? " threaded" : " locked") << " key "
          << streams[i].first;
    }
  }
}

TEST_P(CodecPipelineTest, ConcurrentProducersStayLossless) {
  // One producer thread per key; per-key output must match the direct run
  // regardless of codec buffering.
  constexpr size_t kKeys = 6;
  auto pipeline = Pipeline::Builder()
                      .DefaultSpec("slide(eps=0.75)")
                      .Codec(GetParam())
                      .Shards(4)
                      .Threads(true)
                      .QueueCapacity(256)
                      .Build()
                      .value();
  std::vector<Signal> signals;
  for (size_t i = 0; i < kKeys; ++i) signals.push_back(Walk(70 + i, 0.0));
  std::vector<std::thread> producers;
  for (size_t i = 0; i < kKeys; ++i) {
    producers.emplace_back([&, i] {
      const std::string key = "k" + std::to_string(i);
      for (const DataPoint& p : signals[i].points) {
        ASSERT_TRUE(pipeline->Append(key, p).ok());
      }
    });
  }
  for (auto& producer : producers) producer.join();
  ASSERT_TRUE(pipeline->Finish().ok());
  for (size_t i = 0; i < kKeys; ++i) {
    EXPECT_EQ(pipeline->Segments("k" + std::to_string(i)).value(),
              DirectSegments("slide(eps=0.75)", signals[i]))
        << "key " << i;
  }
}

TEST_P(CodecPipelineTest, MidStreamFlushDrainsBufferedRecords) {
  auto pipeline = Pipeline::Builder()
                      .DefaultSpec("swing(eps=0.4)")
                      .Codec(GetParam())
                      .Build()
                      .value();
  const Signal signal = Walk(99, 5.0);
  CollectingSink mid_sink;
  auto mid_filter = MakeFilter("swing(eps=0.4)", &mid_sink).value();
  for (size_t j = 0; j < 750; ++j) {
    ASSERT_TRUE(pipeline->Append("k", signal.points[j]).ok());
    ASSERT_TRUE(mid_filter->Append(signal.points[j]).ok());
  }
  ASSERT_TRUE(pipeline->Flush().ok());
  // After Flush, everything the filter emitted so far is visible — even
  // through a batching codec that was holding records back. (A trailing
  // point segment travels as a lone break record the receiver cannot
  // finalize until the stream continues, so allow a lag of exactly one.)
  const auto received = pipeline->Segments("k").value();
  ASSERT_GE(received.size() + 1, mid_sink.segments().size())
      << "Flush must drain codec buffers mid-stream";
  for (size_t i = 0; i < received.size(); ++i) {
    EXPECT_EQ(received[i], mid_sink.segments()[i]) << i;
  }
  const size_t mid = received.size();
  for (size_t j = 750; j < signal.size(); ++j) {
    ASSERT_TRUE(pipeline->Append("k", signal.points[j]).ok());
  }
  ASSERT_TRUE(pipeline->Finish().ok());
  EXPECT_GE(pipeline->Segments("k")->size(), mid);
  EXPECT_EQ(pipeline->Segments("k").value(),
            DirectSegments("swing(eps=0.4)", signal));
}

TEST_P(CodecPipelineTest, MaxLagProvisionalLinesSurviveEveryCodec) {
  // max_lag forces kProvisionalLine records onto the wire.
  auto pipeline = Pipeline::Builder()
                      .DefaultSpec("slide(eps=0.05,max_lag=16)")
                      .Codec(GetParam())
                      .Build()
                      .value();
  const Signal signal = Walk(123, 0.0);
  for (const DataPoint& p : signal.points) {
    ASSERT_TRUE(pipeline->Append("k", p).ok());
  }
  ASSERT_TRUE(pipeline->Finish().ok());
  EXPECT_EQ(pipeline->Segments("k").value(),
            DirectSegments("slide(eps=0.05,max_lag=16)", signal));
}

INSTANTIATE_TEST_SUITE_P(EveryCodec, CodecPipelineTest,
                         ::testing::ValuesIn(kCodecSpecs),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Builder surface
// ---------------------------------------------------------------------------

TEST(PipelineCodecBuilderTest, DefaultCodecIsFrame) {
  auto pipeline =
      Pipeline::Builder().DefaultSpec("swing(eps=1)").Build().value();
  EXPECT_EQ(pipeline->CodecSpec().family, "frame");
  ASSERT_TRUE(pipeline->Append("k", 0.0, 1.0).ok());
  ASSERT_TRUE(pipeline->Finish().ok());
  // One record per frame is the "frame" contract.
  const auto stats = pipeline->StatsFor("k").value();
  EXPECT_EQ(stats.frames_sent, stats.records_sent);
}

TEST(PipelineCodecBuilderTest, CodecSpecParseErrorSurfacesAtBuild) {
  auto pipeline = Pipeline::Builder()
                      .DefaultSpec("swing(eps=1)")
                      .Codec("batch(n=")
                      .Build();
  EXPECT_EQ(pipeline.status().code(), StatusCode::kInvalidArgument);
}

TEST(PipelineCodecBuilderTest, UnknownCodecIsNotFoundAtBuild) {
  auto pipeline = Pipeline::Builder()
                      .DefaultSpec("swing(eps=1)")
                      .Codec("zstd")
                      .Build();
  EXPECT_EQ(pipeline.status().code(), StatusCode::kNotFound);
}

TEST(PipelineCodecBuilderTest, BadCodecParamsFailAtBuild) {
  auto pipeline = Pipeline::Builder()
                      .DefaultSpec("swing(eps=1)")
                      .Codec("batch(n=0)")
                      .Build();
  EXPECT_EQ(pipeline.status().code(), StatusCode::kInvalidArgument);
}

TEST(PipelineCodecBuilderTest, NullCodecRegistryFailsAtBuild) {
  auto pipeline = Pipeline::Builder()
                      .DefaultSpec("swing(eps=1)")
                      .WithCodecRegistry(nullptr)
                      .Build();
  EXPECT_EQ(pipeline.status().code(), StatusCode::kInvalidArgument);
}

TEST(PipelineCodecBuilderTest, PrivateCodecRegistryIsHonored) {
  CodecRegistry registry;  // empty: even "frame" is unknown
  auto pipeline = Pipeline::Builder()
                      .DefaultSpec("swing(eps=1)")
                      .WithCodecRegistry(&registry)
                      .Build();
  EXPECT_EQ(pipeline.status().code(), StatusCode::kNotFound);

  RegisterBuiltinWireCodecs(registry);
  auto ok = Pipeline::Builder()
                .DefaultSpec("swing(eps=1)")
                .Codec("delta")
                .WithCodecRegistry(&registry)
                .Build();
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)->CodecSpec().family, "delta");
}

TEST(PipelineCodecBuilderTest, BatchingReducesFramesAndBytes) {
  const Signal signal = Walk(7, 0.0);
  Pipeline::PipelineStats frame_stats;
  Pipeline::PipelineStats batch_stats;
  for (const bool batched : {false, true}) {
    auto pipeline = Pipeline::Builder()
                        .DefaultSpec("slide(eps=0.2)")
                        .Codec(batched ? "batch(n=64)" : "frame")
                        .Build()
                        .value();
    for (const DataPoint& p : signal.points) {
      ASSERT_TRUE(pipeline->Append("k", p).ok());
    }
    ASSERT_TRUE(pipeline->Finish().ok());
    (batched ? batch_stats : frame_stats) = pipeline->Stats();
  }
  EXPECT_EQ(batch_stats.records_sent, frame_stats.records_sent);
  EXPECT_LT(batch_stats.frames_sent, frame_stats.frames_sent);
  EXPECT_LT(batch_stats.bytes_sent, frame_stats.bytes_sent);
}

}  // namespace
}  // namespace plastream
