// Copyright (c) 2026 The plastream Authors. MIT license.
//
// Unit tests for the SWAB-style buffered segmenter extension.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/reconstruction.h"
#include "core/swab.h"
#include "datagen/random_walk.h"
#include "eval/metrics.h"
#include "eval/runner.h"

namespace plastream {
namespace {

std::unique_ptr<SwabSegmenter> Make(double eps, size_t capacity = 64) {
  SwabOptions options;
  options.base = FilterOptions::Scalar(eps);
  options.buffer_capacity = capacity;
  return SwabSegmenter::Create(options).value();
}

std::vector<Segment> RunPoints(SwabSegmenter* swab,
                               const std::vector<DataPoint>& points) {
  for (const DataPoint& p : points) EXPECT_TRUE(swab->Append(p).ok());
  EXPECT_TRUE(swab->Finish().ok());
  return swab->TakeSegments();
}

TEST(SwabTest, ExactLineIsOneSegmentPerBufferFlush) {
  auto swab = Make(0.1, 32);
  std::vector<DataPoint> points;
  for (int j = 0; j < 30; ++j) {
    points.push_back(DataPoint::Scalar(j, 2.0 * j));
  }
  const auto segments = RunPoints(swab.get(), points);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_NEAR(segments[0].ValueAt(0, 0), 0.0, 1e-9);
  EXPECT_NEAR(segments[0].ValueAt(29, 0), 58.0, 1e-9);
}

TEST(SwabTest, PrecisionGuaranteeHolds) {
  RandomWalkOptions o;
  o.count = 3000;
  o.max_delta = 1.5;
  o.seed = 61;
  const Signal signal = *GenerateRandomWalk(o);
  const double eps = 0.8;
  auto swab = Make(eps, 48);
  for (const DataPoint& p : signal.points) {
    ASSERT_TRUE(swab->Append(p).ok());
  }
  ASSERT_TRUE(swab->Finish().ok());
  const auto segments = swab->TakeSegments();
  ASSERT_TRUE(ValidateSegmentChain(segments).ok());
  const auto approx = PiecewiseLinearFunction::Make(segments);
  ASSERT_TRUE(approx.ok());
  const std::vector<double> epsilon{eps};
  EXPECT_TRUE(VerifyPrecision(signal, *approx, epsilon).ok());
}

TEST(SwabTest, SegmentationBreaksAtSharpCorner) {
  auto swab = Make(0.2, 64);
  std::vector<DataPoint> points;
  for (int j = 0; j <= 20; ++j) points.push_back(DataPoint::Scalar(j, j));
  for (int j = 21; j <= 40; ++j) {
    points.push_back(DataPoint::Scalar(j, 40.0 - j));
  }
  const auto segments = RunPoints(swab.get(), points);
  ASSERT_EQ(segments.size(), 2u);
  // The corner at t=20 splits the V shape.
  EXPECT_NEAR(segments[0].t_end, 20.0, 1.0);
}

TEST(SwabTest, BufferCapBoundsLag) {
  auto swab = Make(1000.0, 16);  // everything merges; only the cap flushes
  size_t emitted_before_finish = 0;
  for (int j = 0; j < 100; ++j) {
    ASSERT_TRUE(swab->Append(DataPoint::Scalar(j, 0.0)).ok());
    emitted_before_finish += swab->TakeSegments().size();
  }
  EXPECT_GT(emitted_before_finish, 0u)
      << "capacity must force emissions before Finish";
  ASSERT_TRUE(swab->Finish().ok());
}

TEST(SwabTest, LookaheadBeatsOnlineLinearOnCorners) {
  // A triangle wave defeats the linear filter's two-point slope guess at
  // every corner; SWAB's lookahead places boundaries at the corners.
  std::vector<DataPoint> points;
  for (int j = 0; j < 600; ++j) {
    const int phase = j % 60;
    const double v = phase < 30 ? phase : 60 - phase;
    points.push_back(DataPoint::Scalar(j, v));
  }
  Signal signal;
  signal.points = points;

  auto swab = Make(0.25, 64);
  const auto swab_segments = RunPoints(swab.get(), points);

  const auto linear =
      *RunFilter(*FilterSpec::Parse("linear(mode=disconnected)"),
                 FilterOptions::Scalar(0.25), signal);
  EXPECT_LE(swab_segments.size(), linear.segments.size());
}

TEST(SwabTest, MultiDimensionalBound) {
  SwabOptions options;
  options.base = FilterOptions::Uniform(2, 0.5);
  options.buffer_capacity = 32;
  auto swab = SwabSegmenter::Create(options).value();
  Rng rng(62);
  Signal signal;
  double a = 0.0, b = 0.0;
  for (int j = 0; j < 500; ++j) {
    a += rng.Uniform(-0.4, 0.5);
    b += rng.Uniform(-0.5, 0.4);
    signal.points.push_back(DataPoint(j, {a, b}));
    ASSERT_TRUE(swab->Append(signal.points.back()).ok());
  }
  ASSERT_TRUE(swab->Finish().ok());
  const auto segments = swab->TakeSegments();
  const auto approx = PiecewiseLinearFunction::Make(segments);
  ASSERT_TRUE(approx.ok());
  EXPECT_TRUE(VerifyPrecision(signal, *approx, options.base.epsilon).ok());
}

TEST(SwabTest, SinglePointAndEmptyStreams) {
  auto swab = Make(1.0);
  ASSERT_TRUE(swab->Finish().ok());
  EXPECT_TRUE(swab->TakeSegments().empty());

  auto swab2 = Make(1.0);
  ASSERT_TRUE(swab2->Append(DataPoint::Scalar(0, 5)).ok());
  ASSERT_TRUE(swab2->Finish().ok());
  const auto segments = swab2->TakeSegments();
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_DOUBLE_EQ(segments[0].x_start[0], 5.0);
}

}  // namespace
}  // namespace plastream
