// Copyright (c) 2026 The plastream Authors. MIT license.
//
// Unit tests for core value types: segments, recording-cost accounting, and
// segment-chain validation.

#include <vector>

#include <gtest/gtest.h>

#include "core/types.h"

namespace plastream {
namespace {

Segment MakeSegment(double t0, double t1, double x0, double x1,
                    bool connected = false) {
  Segment seg;
  seg.t_start = t0;
  seg.t_end = t1;
  seg.x_start = {x0};
  seg.x_end = {x1};
  seg.connected_to_prev = connected;
  return seg;
}

TEST(SegmentTest, ValueAtInterpolatesLinearly) {
  const Segment seg = MakeSegment(0, 10, 0, 20);
  EXPECT_DOUBLE_EQ(seg.ValueAt(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(seg.ValueAt(5, 0), 10.0);
  EXPECT_DOUBLE_EQ(seg.ValueAt(10, 0), 20.0);
}

TEST(SegmentTest, ValueAtExtrapolatesBeyondEnds) {
  const Segment seg = MakeSegment(0, 2, 0, 2);
  EXPECT_DOUBLE_EQ(seg.ValueAt(4, 0), 4.0);
  EXPECT_DOUBLE_EQ(seg.ValueAt(-1, 0), -1.0);
}

TEST(SegmentTest, PointSegmentIsConstant) {
  const Segment seg = MakeSegment(3, 3, 7, 7);
  EXPECT_TRUE(seg.IsPoint());
  EXPECT_DOUBLE_EQ(seg.ValueAt(3, 0), 7.0);
  EXPECT_DOUBLE_EQ(seg.ValueAt(100, 0), 7.0);
}

TEST(SegmentTest, MultiDimensionalValueAt) {
  Segment seg;
  seg.t_start = 0;
  seg.t_end = 4;
  seg.x_start = {0.0, 8.0};
  seg.x_end = {4.0, 0.0};
  const auto values = seg.ValueAt(2.0);
  ASSERT_EQ(values.size(), 2u);
  EXPECT_DOUBLE_EQ(values[0], 2.0);
  EXPECT_DOUBLE_EQ(values[1], 4.0);
}

TEST(SegmentTest, ToStringMentionsConnectivity) {
  EXPECT_NE(MakeSegment(0, 1, 0, 1, true).ToString().find("connected"),
            std::string::npos);
  EXPECT_NE(MakeSegment(0, 1, 0, 1, false).ToString().find("disconnected"),
            std::string::npos);
}

TEST(CountRecordingsTest, PiecewiseConstantChargesOnePerSegment) {
  const std::vector<Segment> segments{MakeSegment(0, 1, 0, 0),
                                      MakeSegment(2, 3, 1, 1)};
  EXPECT_EQ(CountRecordings(segments, RecordingCostModel::kPiecewiseConstant),
            2u);
}

TEST(CountRecordingsTest, PiecewiseLinearChargesByConnectivity) {
  const std::vector<Segment> segments{
      MakeSegment(0, 1, 0, 1, false),  // 2 recordings
      MakeSegment(1, 2, 1, 2, true),   // 1 (shares start)
      MakeSegment(3, 4, 0, 1, false),  // 2
  };
  EXPECT_EQ(CountRecordings(segments, RecordingCostModel::kPiecewiseLinear),
            5u);
}

TEST(CountRecordingsTest, PointSegmentsCostOne) {
  const std::vector<Segment> segments{MakeSegment(5, 5, 1, 1, false)};
  EXPECT_EQ(CountRecordings(segments, RecordingCostModel::kPiecewiseLinear),
            1u);
}

TEST(CountRecordingsTest, ExtraRecordingsAreAdded) {
  const std::vector<Segment> segments{MakeSegment(0, 1, 0, 1, false)};
  EXPECT_EQ(
      CountRecordings(segments, RecordingCostModel::kPiecewiseLinear, 3), 5u);
}

TEST(ValidateSegmentChainTest, AcceptsEmptyAndWellFormed) {
  EXPECT_TRUE(ValidateSegmentChain({}).ok());
  const std::vector<Segment> segments{
      MakeSegment(0, 1, 0, 1, false), MakeSegment(1, 2, 1, 0, true),
      MakeSegment(3, 4, 5, 5, false)};
  EXPECT_TRUE(ValidateSegmentChain(segments).ok());
}

TEST(ValidateSegmentChainTest, RejectsFirstSegmentMarkedConnected) {
  EXPECT_EQ(ValidateSegmentChain({MakeSegment(0, 1, 0, 1, true)}).code(),
            StatusCode::kCorruption);
}

TEST(ValidateSegmentChainTest, RejectsOverlap) {
  const std::vector<Segment> segments{MakeSegment(0, 2, 0, 1),
                                      MakeSegment(1, 3, 0, 1)};
  EXPECT_EQ(ValidateSegmentChain(segments).code(), StatusCode::kCorruption);
}

TEST(ValidateSegmentChainTest, RejectsReversedSegment) {
  EXPECT_EQ(ValidateSegmentChain({MakeSegment(2, 1, 0, 1)}).code(),
            StatusCode::kCorruption);
}

TEST(ValidateSegmentChainTest, RejectsConnectedWithDifferentValue) {
  std::vector<Segment> segments{MakeSegment(0, 1, 0, 1, false),
                                MakeSegment(1, 2, 1.5, 2, true)};
  EXPECT_EQ(ValidateSegmentChain(segments).code(), StatusCode::kCorruption);
}

TEST(ValidateSegmentChainTest, RejectsConnectedWithGap) {
  std::vector<Segment> segments{MakeSegment(0, 1, 0, 1, false),
                                MakeSegment(1.5, 2, 1, 2, true)};
  EXPECT_EQ(ValidateSegmentChain(segments).code(), StatusCode::kCorruption);
}

TEST(ValidateSegmentChainTest, RejectsNonFiniteValues) {
  Segment seg = MakeSegment(0, 1, 0, 1);
  seg.x_end[0] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(ValidateSegmentChain({seg}).code(), StatusCode::kCorruption);
}

TEST(ValidateSegmentChainTest, RejectsDimensionMismatch) {
  Segment a = MakeSegment(0, 1, 0, 1);
  Segment b = MakeSegment(2, 3, 0, 1);
  b.x_start = {0.0, 1.0};
  b.x_end = {1.0, 2.0};
  EXPECT_EQ(ValidateSegmentChain({a, b}).code(), StatusCode::kCorruption);
}

TEST(DataPointTest, ScalarFactory) {
  const DataPoint p = DataPoint::Scalar(2.5, -1.0);
  EXPECT_DOUBLE_EQ(p.t, 2.5);
  ASSERT_EQ(p.x.size(), 1u);
  EXPECT_DOUBLE_EQ(p.x[0], -1.0);
}

}  // namespace
}  // namespace plastream
