// Copyright (c) 2026 The plastream Authors. MIT license.
//
// The collector's connection-lifecycle hardening: handshake/idle
// deadlines, slowloris (minimum-progress-rate) eviction, per-connection
// and global memory budgets with load shedding, the terminal ERROR an
// evicted peer receives, and the producer-side satellites (capped
// backoff under injected connect faults, PollSocket timeouts, the new
// endpoint tuning keys).

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <functional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "plastream.h"
#include "stream/frame_splitter.h"
#include "transport/endpoint.h"
#include "transport/net_protocol.h"

namespace plastream {
namespace {

// A collector running its poll loop on a background thread; Shutdown()
// and join on destruction.
class ScopedCollector {
 public:
  explicit ScopedCollector(std::unique_ptr<CollectorServer> server)
      : server_(std::move(server)),
        thread_([this] { serve_status_ = server_->Serve(); }) {}
  ~ScopedCollector() {
    server_->Shutdown();
    thread_.join();
    EXPECT_TRUE(serve_status_.ok()) << serve_status_.message();
  }
  CollectorServer& operator*() { return *server_; }
  CollectorServer* operator->() { return server_.get(); }

 private:
  std::unique_ptr<CollectorServer> server_;
  Status serve_status_ = Status::OK();
  std::thread thread_;
};

std::unique_ptr<CollectorServer> ListenLoopback(
    CollectorServer::Options options) {
  auto server =
      CollectorServer::Listen("tcp(host=127.0.0.1,port=0)", options);
  EXPECT_TRUE(server.ok()) << server.status().message();
  return std::move(server).value();
}

Result<SocketFd> DialRaw(const CollectorServer& server) {
  return TcpConnect("127.0.0.1", server.port(), /*connect_timeout_ms=*/5000);
}

// Polls `pred` every few ms until it holds or `timeout_ms` elapses.
bool WaitFor(const std::function<bool()>& pred, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

// Writes all of `bytes`, polling through partial writes.
void SendAll(const SocketFd& fd, std::span<const uint8_t> bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    size_t n = 0;
    const IoOutcome outcome = WriteSome(fd.get(), bytes.subspan(sent), &n);
    if (outcome == IoOutcome::kProgress) {
      sent += n;
      continue;
    }
    ASSERT_EQ(outcome, IoOutcome::kWouldBlock);
    ASSERT_TRUE(PollSocket(fd.get(), /*want_write=*/true, 1000));
  }
}

// Reads until one complete protocol message arrives and returns the
// reason of the ERROR it must be.
std::string ReadEvictionReason(const SocketFd& fd, int timeout_ms) {
  FrameSplitter splitter;
  uint8_t chunk[4096];
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (!splitter.HasFrame()) {
    if (std::chrono::steady_clock::now() >= deadline) {
      ADD_FAILURE() << "no ERROR message within " << timeout_ms << " ms";
      return "";
    }
    if (!PollSocket(fd.get(), /*want_write=*/false, 100)) continue;
    size_t n = 0;
    const IoOutcome outcome =
        ReadSome(fd.get(), std::span<uint8_t>(chunk, sizeof(chunk)), &n);
    if (outcome == IoOutcome::kWouldBlock) continue;
    if (outcome != IoOutcome::kProgress) {
      ADD_FAILURE() << "connection ended before the terminal ERROR";
      return "";
    }
    EXPECT_TRUE(splitter.Feed(std::span<const uint8_t>(chunk, n)).ok());
  }
  const std::span<const uint8_t> payload = splitter.NextFrame();
  const auto type = ParseMessageType(payload);
  EXPECT_TRUE(type.ok() && *type == NetMessageType::kError)
      << "expected a terminal ERROR message";
  const auto reason = ParseErrorMessage(payload);
  EXPECT_TRUE(reason.ok()) << reason.status().message();
  return reason.ok() ? *reason : "";
}

// True once the peer has closed the connection (orderly EOF).
bool ReadUntilClosed(const SocketFd& fd, int timeout_ms) {
  uint8_t chunk[4096];
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (!PollSocket(fd.get(), /*want_write=*/false, 100)) continue;
    size_t n = 0;
    const IoOutcome outcome =
        ReadSome(fd.get(), std::span<uint8_t>(chunk, sizeof(chunk)), &n);
    if (outcome == IoOutcome::kClosed) return true;
    if (outcome == IoOutcome::kError) return true;
  }
  return false;
}

std::vector<uint8_t> HelloBytes() {
  std::vector<uint8_t> bytes;
  AppendHelloMessage(&bytes, "frame");
  return bytes;
}

// The length prefix of a message that will never be completed — the
// reassembly backlog it leaves buffered is what the memory budgets see.
std::vector<uint8_t> PartialMessage(uint32_t declared_len, size_t body_sent) {
  std::vector<uint8_t> bytes = {
      static_cast<uint8_t>(declared_len & 0xff),
      static_cast<uint8_t>((declared_len >> 8) & 0xff),
      static_cast<uint8_t>((declared_len >> 16) & 0xff),
      static_cast<uint8_t>((declared_len >> 24) & 0xff),
  };
  bytes.push_back(static_cast<uint8_t>(NetMessageType::kFrame));
  bytes.resize(bytes.size() + body_sent - 1, 0);
  return bytes;
}

TEST(CollectorDeadlineTest, HandshakeTimeoutEvictsSilentConnection) {
  CollectorServer::Options options;
  options.handshake_timeout_ms = 50;
  ScopedCollector collector(ListenLoopback(options));
  auto conn = DialRaw(*collector);
  ASSERT_TRUE(conn.ok()) << conn.status().message();
  // Never send a byte: the HELLO deadline must fire.
  ASSERT_TRUE(WaitFor(
      [&] { return collector->GetStats().evicted_handshake >= 1; }, 5000));
  const std::string reason = ReadEvictionReason(*conn, 2000);
  EXPECT_NE(reason.find("handshake deadline"), std::string::npos) << reason;
  // The eviction is a clean close, not a silent drop.
  EXPECT_TRUE(ReadUntilClosed(*conn, 5000));
  EXPECT_TRUE(
      WaitFor([&] { return collector->GetStats().connections_open == 0; },
              5000));
}

TEST(CollectorDeadlineTest, IdleTimeoutEvictsEstablishedConnection) {
  CollectorServer::Options options;
  options.idle_timeout_ms = 50;
  ScopedCollector collector(ListenLoopback(options));
  auto conn = DialRaw(*collector);
  ASSERT_TRUE(conn.ok()) << conn.status().message();
  SendAll(*conn, HelloBytes());
  // Hello'd, then silent: the idle deadline must fire (not the handshake
  // one — the handshake completed).
  ASSERT_TRUE(WaitFor(
      [&] { return collector->GetStats().evicted_idle >= 1; }, 5000));
  EXPECT_EQ(collector->GetStats().evicted_handshake, 0u);
  const std::string reason = ReadEvictionReason(*conn, 2000);
  EXPECT_NE(reason.find("idle deadline"), std::string::npos) << reason;
}

TEST(CollectorDeadlineTest, SlowlorisTrickleIsEvicted) {
  CollectorServer::Options options;
  options.handshake_timeout_ms = 100;  // grace floor is still 1000 ms
  options.min_bytes_per_sec = 100 * 1024 * 1024;
  ScopedCollector collector(ListenLoopback(options));
  auto conn = DialRaw(*collector);
  ASSERT_TRUE(conn.ok()) << conn.status().message();
  SendAll(*conn, HelloBytes());
  // Trickle single bytes of a declared-but-never-completed frame, often
  // enough to never look idle — the progress-rate floor must catch it.
  const std::vector<uint8_t> partial = PartialMessage(1024, 1);
  SendAll(*conn, partial);
  uint8_t drip = 0;
  bool evicted = false;
  for (int i = 0; i < 100 && !evicted; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    size_t n = 0;
    (void)WriteSome(conn->get(), std::span<const uint8_t>(&drip, 1), &n);
    evicted = collector->GetStats().evicted_slow >= 1;
  }
  ASSERT_TRUE(evicted) << "slowloris trickle was never evicted";
  const std::string reason = ReadEvictionReason(*conn, 2000);
  EXPECT_NE(reason.find("progress below"), std::string::npos) << reason;
}

TEST(CollectorBudgetTest, PerConnectionBudgetShedsBacklog) {
  CollectorServer::Options options;
  options.max_connection_buffer_bytes = 1024;
  ScopedCollector collector(ListenLoopback(options));
  auto conn = DialRaw(*collector);
  ASSERT_TRUE(conn.ok()) << conn.status().message();
  SendAll(*conn, HelloBytes());
  // An 8 KiB reassembly backlog against a 1 KiB budget.
  SendAll(*conn, PartialMessage(512 * 1024, 8 * 1024));
  ASSERT_TRUE(WaitFor(
      [&] { return collector->GetStats().shed_budget >= 1; }, 5000));
  const std::string reason = ReadEvictionReason(*conn, 2000);
  EXPECT_NE(reason.find("connection memory budget"), std::string::npos)
      << reason;
}

TEST(CollectorBudgetTest, GlobalBudgetShedsLargestFootprintFirst) {
  CollectorServer::Options options;
  options.max_total_buffer_bytes = 4096;
  ScopedCollector collector(ListenLoopback(options));
  auto big = DialRaw(*collector);
  auto small = DialRaw(*collector);
  ASSERT_TRUE(big.ok() && small.ok());
  SendAll(*small, HelloBytes());
  SendAll(*small, PartialMessage(1024, 600));
  SendAll(*big, HelloBytes());
  SendAll(*big, PartialMessage(512 * 1024, 4 * 1024));
  ASSERT_TRUE(WaitFor(
      [&] { return collector->GetStats().shed_budget >= 1; }, 5000));
  // Shedding the big backlog brings the total back under budget; the
  // small connection survives.
  const std::string reason = ReadEvictionReason(*big, 2000);
  EXPECT_NE(reason.find("collector memory budget"), std::string::npos)
      << reason;
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(collector->GetStats().shed_budget, 1u);
  EXPECT_FALSE(PollSocket(small->get(), /*want_write=*/false, 50))
      << "the surviving connection unexpectedly received data";
}

TEST(CollectorDeadlineTest, HealthyProducerIsNotEvicted) {
  CollectorServer::Options options;
  options.handshake_timeout_ms = 200;
  options.idle_timeout_ms = 10'000;
  options.max_connection_buffer_bytes = 1 << 20;
  ScopedCollector collector(ListenLoopback(options));
  // A real producer conversation under active deadlines: nothing fires.
  auto pipeline = Pipeline::Builder()
                      .DefaultSpec("swing(eps=0.1)")
                      .Transport(collector->endpoint())
                      .Build();
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().message();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*pipeline)->Append("k", i, std::sin(i * 0.1)).ok());
  }
  ASSERT_TRUE((*pipeline)->Finish().ok());
  const CollectorServer::Stats stats = collector->GetStats();
  EXPECT_EQ(stats.evicted_handshake, 0u);
  EXPECT_EQ(stats.evicted_idle, 0u);
  EXPECT_EQ(stats.evicted_slow, 0u);
  EXPECT_EQ(stats.shed_budget, 0u);
  EXPECT_EQ(stats.streams_finished, 1u);
}

// --- producer-side satellites ----------------------------------------------

TEST(ProducerBackoffTest, RetriesExhaustUnderInjectedConnectFaults) {
  FaultPlan plan;
  plan.err_rate = 1.0;
  ScopedFaultInjection scope(plan);
  const auto client = ProducerClient::Connect(
      "tcp(host=127.0.0.1,port=9,retries=3,backoff_ms=1,backoff_max_ms=4,"
      "connect_timeout_ms=100)",
      "frame");
  ASSERT_FALSE(client.ok());
  EXPECT_NE(client.status().message().find("injected fault"),
            std::string::npos)
      << client.status().message();
}

TEST(PollSocketTest, TimesOutThenSeesData) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  SocketFd a(fds[0]);
  SocketFd b(fds[1]);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(PollSocket(a.get(), /*want_write=*/false, 50));
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(waited.count(), 40);
  const uint8_t byte = 1;
  size_t n = 0;
  ASSERT_EQ(WriteSome(b.get(), std::span<const uint8_t>(&byte, 1), &n),
            IoOutcome::kProgress);
  EXPECT_TRUE(PollSocket(a.get(), /*want_write=*/false, 1000));
}

TEST(EndpointTuningTest, AcceptsAndBoundsTheNewKeys) {
  const auto spec = FilterSpec::Parse(
      "tcp(host=127.0.0.1,port=9099,backoff_max_ms=500,"
      "connect_timeout_ms=250)");
  ASSERT_TRUE(spec.ok()) << spec.status().message();
  const auto endpoint = ParseNetEndpoint(*spec);
  ASSERT_TRUE(endpoint.ok()) << endpoint.status().message();
  EXPECT_EQ(endpoint->port, 9099);

  const auto out_of_range = FilterSpec::Parse(
      "tcp(port=9099,connect_timeout_ms=999999999)");
  ASSERT_TRUE(out_of_range.ok());
  EXPECT_EQ(ParseNetEndpoint(*out_of_range).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace plastream
