// Copyright (c) 2026 The plastream Authors. MIT license.
//
// The transport subsystem below the Pipeline: TransportRegistry specs,
// endpoint parsing, the wire protocol's message round-trip, and the
// ProducerClient ↔ CollectorServer conversation — including the forced
// mid-stream disconnect that exercises reconnect-and-resume and the
// seq-dedup that keeps resumed streams byte-identical.

#include <unistd.h>

#include <cstdio>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "plastream.h"
#include "stream/frame_splitter.h"
#include "transport/endpoint.h"
#include "transport/net_protocol.h"

namespace plastream {
namespace {

// A collector running its poll loop on a background thread; Shutdown()
// and join on destruction.
class ScopedCollector {
 public:
  explicit ScopedCollector(std::unique_ptr<CollectorServer> server)
      : server_(std::move(server)),
        thread_([this] { serve_status_ = server_->Serve(); }) {}
  ~ScopedCollector() {
    server_->Shutdown();
    thread_.join();
    EXPECT_TRUE(serve_status_.ok()) << serve_status_.message();
  }
  CollectorServer& operator*() { return *server_; }
  CollectorServer* operator->() { return server_.get(); }

 private:
  std::unique_ptr<CollectorServer> server_;
  Status serve_status_ = Status::OK();
  std::thread thread_;
};

std::string TempUdsPath(const char* tag) {
  return std::string(::testing::TempDir()) + "plastream_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

TEST(TransportRegistryTest, ListsBuiltinsAndRejectsUnknown) {
  const TransportRegistry& registry = TransportRegistry::Global();
  EXPECT_TRUE(registry.Contains("inproc"));
  EXPECT_TRUE(registry.Contains("tcp"));
  EXPECT_TRUE(registry.Contains("uds"));
  EXPECT_EQ(registry.MakeTransport("carrier-pigeon").status().code(),
            StatusCode::kNotFound);
  // Filter options have no meaning on a transport spec.
  EXPECT_EQ(registry.MakeTransport("inproc(eps=0.5)").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TransportRegistryTest, InprocIsALocalMarker) {
  auto transport =
      TransportRegistry::Global().MakeTransport("inproc").value();
  EXPECT_FALSE(transport->remote());
  EXPECT_EQ(transport->name(), "inproc");
  EXPECT_TRUE(transport->Connect("frame").ok());
  EXPECT_EQ(transport->OpenLink("k", 1).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(transport->Flush().ok());
  EXPECT_EQ(transport->GetStats().bytes_sent, 0u);
}

TEST(NetEndpointTest, ParsesAndValidates) {
  const auto tcp = ParseNetEndpoint(
      FilterSpec::Parse("tcp(host=example.org,port=9099)").value());
  ASSERT_TRUE(tcp.ok()) << tcp.status().message();
  EXPECT_EQ(tcp.value().kind, NetEndpoint::Kind::kTcp);
  EXPECT_EQ(tcp.value().host, "example.org");
  EXPECT_EQ(tcp.value().port, 9099);
  EXPECT_EQ(tcp.value().Format(), "tcp(host=example.org,port=9099)");

  const auto uds =
      ParseNetEndpoint(FilterSpec::Parse("uds(path=/tmp/x.sock)").value());
  ASSERT_TRUE(uds.ok());
  EXPECT_EQ(uds.value().kind, NetEndpoint::Kind::kUds);
  EXPECT_EQ(uds.value().path, "/tmp/x.sock");

  // Required fields and bounds.
  EXPECT_FALSE(ParseNetEndpoint(FilterSpec::Parse("tcp").value()).ok());
  EXPECT_FALSE(
      ParseNetEndpoint(FilterSpec::Parse("tcp(port=70000)").value()).ok());
  EXPECT_FALSE(ParseNetEndpoint(FilterSpec::Parse("uds").value()).ok());
  EXPECT_FALSE(
      ParseNetEndpoint(FilterSpec::Parse("tcp(port=1,bogus=2)").value())
          .ok());
  // Producer-tuning keys are validated on both sides.
  EXPECT_FALSE(ParseNetEndpoint(
                   FilterSpec::Parse("tcp(port=1,retries=lots)").value())
                   .ok());
  EXPECT_TRUE(ParseNetEndpoint(
                  FilterSpec::Parse(
                      "tcp(port=1,max_unacked_kb=64,retries=3,backoff_ms=5)")
                      .value())
                  .ok());
}

TEST(NetProtocolTest, MessagesRoundTripThroughASplitter) {
  std::vector<uint8_t> stream;
  AppendHelloMessage(&stream, "delta(varint=true)");
  AppendOpenStreamMessage(&stream, 7, 3, "host1.cpu");
  const std::vector<uint8_t> frame_bytes = {0xAA, 0xBB, 0xCC};
  AppendFrameMessage(&stream, 7, 1, frame_bytes);
  AppendFinishMessage(&stream, 7, 2);
  AppendAckMessage(&stream, 7, 2);
  AppendErrorMessage(&stream, "boom");

  FrameSplitter splitter;
  ASSERT_TRUE(splitter.Feed(stream).ok());

  ASSERT_TRUE(splitter.HasFrame());
  const auto hello = ParseHelloMessage(splitter.NextFrame());
  ASSERT_TRUE(hello.ok()) << hello.status().message();
  EXPECT_EQ(hello.value().version, kNetProtocolVersion);
  EXPECT_EQ(hello.value().codec_spec, "delta(varint=true)");

  ASSERT_TRUE(splitter.HasFrame());
  const auto open = ParseOpenStreamMessage(splitter.NextFrame());
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(open.value().stream_id, 7u);
  EXPECT_EQ(open.value().dims, 3u);
  EXPECT_EQ(open.value().key, "host1.cpu");

  ASSERT_TRUE(splitter.HasFrame());
  const std::span<const uint8_t> frame_payload = splitter.NextFrame();
  const auto frame = ParseFrameMessage(frame_payload);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame.value().stream_id, 7u);
  EXPECT_EQ(frame.value().seq, 1u);
  EXPECT_EQ(std::vector<uint8_t>(frame.value().frame.begin(),
                                 frame.value().frame.end()),
            frame_bytes);

  ASSERT_TRUE(splitter.HasFrame());
  const auto finish = ParseFinishMessage(splitter.NextFrame());
  ASSERT_TRUE(finish.ok());
  EXPECT_EQ(finish.value().seq, 2u);

  ASSERT_TRUE(splitter.HasFrame());
  const auto ack = ParseAckMessage(splitter.NextFrame());
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack.value().stream_id, 7u);
  EXPECT_EQ(ack.value().seq, 2u);

  ASSERT_TRUE(splitter.HasFrame());
  const auto error = ParseErrorMessage(splitter.NextFrame());
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error.value(), "boom");
  EXPECT_FALSE(splitter.HasFrame());
}

TEST(NetProtocolTest, RejectsMalformedMessages) {
  // Empty payload, unknown type, truncation, zero seq.
  EXPECT_EQ(ParseMessageType({}).status().code(), StatusCode::kCorruption);
  const std::vector<uint8_t> unknown = {99};
  EXPECT_FALSE(ParseMessageType(unknown).ok());

  std::vector<uint8_t> stream;
  AppendFrameMessage(&stream, 1, 1, std::vector<uint8_t>{0x01});
  FrameSplitter splitter;
  ASSERT_TRUE(splitter.Feed(stream).ok());
  std::vector<uint8_t> payload;
  {
    const std::span<const uint8_t> frame = splitter.NextFrame();
    payload.assign(frame.begin(), frame.end());
  }
  // Truncate mid-header.
  EXPECT_EQ(ParseFrameMessage(
                std::span<const uint8_t>(payload.data(), payload.size() - 3))
                .status()
                .code(),
            StatusCode::kCorruption);
  // A hello is not a frame.
  std::vector<uint8_t> hello_stream;
  AppendHelloMessage(&hello_stream, "frame");
  FrameSplitter hello_splitter;
  ASSERT_TRUE(hello_splitter.Feed(hello_stream).ok());
  EXPECT_FALSE(ParseFrameMessage(hello_splitter.NextFrame()).ok());
}

// Encodes `records` with `codec_spec`, returning the flushed frames.
std::vector<std::vector<uint8_t>> EncodeFrames(
    const std::string& codec_spec, const std::vector<WireRecord>& records) {
  auto codec = CodecRegistry::Global().MakeCodec(codec_spec).value();
  Channel channel;
  for (const WireRecord& record : records) {
    EXPECT_TRUE(codec->Encode(record, &channel).ok());
  }
  EXPECT_TRUE(codec->Flush(&channel).ok());
  std::vector<std::vector<uint8_t>> frames;
  while (auto frame = channel.Pop()) frames.push_back(std::move(*frame));
  return frames;
}

std::vector<WireRecord> SampleRecords() {
  std::vector<WireRecord> records;
  WireRecord start;
  start.type = WireRecordType::kSegmentBreak;
  start.t = 0.0;
  start.x = DimVec{1.0};
  records.push_back(start);
  for (int i = 1; i <= 8; ++i) {
    WireRecord end;
    end.type = i == 1 ? WireRecordType::kSegmentPoint
                      : WireRecordType::kSegmentPointConnected;
    end.t = i;
    end.x = DimVec{1.0 + 0.5 * i};
    records.push_back(end);
  }
  return records;
}

TEST(CollectorServerTest, UdsRoundTripWithMidStreamDisconnect) {
  const std::string path = TempUdsPath("roundtrip");
  auto listened = CollectorServer::Listen("uds(path=" + path + ")");
  ASSERT_TRUE(listened.ok()) << listened.status().message();
  ScopedCollector server(std::move(listened).value());

  // The reference: the same frames decoded by a local receiver.
  const std::vector<WireRecord> records = SampleRecords();
  const std::vector<std::vector<uint8_t>> frames =
      EncodeFrames("delta", records);
  ASSERT_GE(frames.size(), 4u);
  auto reference_codec = CodecRegistry::Global().MakeCodec("delta").value();
  Receiver reference(reference_codec.get());
  for (const auto& frame : frames) {
    ASSERT_TRUE(reference.ApplyFrame(frame).ok());
  }
  ASSERT_TRUE(reference.FinishStream().ok());

  ProducerClient::Options options;
  options.retries = 20;
  options.backoff_ms = 5;
  auto connected =
      ProducerClient::Connect(server->endpoint(), "delta", options);
  ASSERT_TRUE(connected.ok()) << connected.status().message();
  ProducerClient& client = *connected.value();
  const uint32_t stream_id = client.OpenStream("host1.cpu", 1).value();

  // Drop the connection mid-stream, twice, from both ends: the client
  // must redial, resend, and the collector must dedup what it already
  // applied — the delta chain state advances exactly once per frame.
  for (size_t i = 0; i < frames.size(); ++i) {
    if (i == 1) client.DebugDropConnection();
    if (i == 3) {
      const Status flushed = client.Flush();
      ASSERT_TRUE(flushed.ok()) << flushed.message();
      server->DropConnections();
    }
    const Status sent = client.SendFrame(stream_id, frames[i]);
    ASSERT_TRUE(sent.ok()) << "frame " << i << ": " << sent.message();
  }
  const Status finished = client.FinishStream(stream_id);
  ASSERT_TRUE(finished.ok()) << finished.message();
  const Status flushed = client.Flush();
  ASSERT_TRUE(flushed.ok()) << flushed.message();

  // Byte-identical resume: collector segments == local receiver segments.
  const auto segments = server->Segments("host1.cpu");
  ASSERT_TRUE(segments.ok()) << segments.status().message();
  EXPECT_EQ(segments.value(), reference.segments());
  EXPECT_TRUE(server->KeyStatus("host1.cpu").ok());

  const auto reconstruction = server->Reconstruction("host1.cpu");
  ASSERT_TRUE(reconstruction.ok());

  const ProducerClient::Stats client_stats = client.GetStats();
  EXPECT_GE(client_stats.reconnects, 1u);
  const CollectorServer::Stats server_stats = server->GetStats();
  EXPECT_EQ(server_stats.streams, 1u);
  EXPECT_GE(server_stats.connections_accepted, 2u);
  std::remove(path.c_str());
}

TEST(CollectorServerTest, TcpEphemeralPortAndMultipleStreams) {
  auto listened = CollectorServer::Listen("tcp(host=127.0.0.1,port=0)");
  ASSERT_TRUE(listened.ok()) << listened.status().message();
  ScopedCollector server(std::move(listened).value());
  EXPECT_NE(server->port(), 0);

  auto client =
      ProducerClient::Connect(server->endpoint(), "frame").value();
  const uint32_t a = client->OpenStream("a", 1).value();
  const uint32_t b = client->OpenStream("b", 1).value();
  const std::vector<std::vector<uint8_t>> frames =
      EncodeFrames("frame", SampleRecords());
  for (const auto& frame : frames) {
    ASSERT_TRUE(client->SendFrame(a, frame).ok());
    ASSERT_TRUE(client->SendFrame(b, frame).ok());
  }
  ASSERT_TRUE(client->FinishStream(a).ok());
  ASSERT_TRUE(client->FinishStream(b).ok());
  ASSERT_TRUE(client->Flush().ok());

  EXPECT_EQ(server->Keys(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(server->Segments("a").value(), server->Segments("b").value());
  EXPECT_EQ(server->Segments("nope").status().code(), StatusCode::kNotFound);
  // The "memory" archive holds the same segments.
  const SegmentStore* store = server->Store("a");
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->segment_count(), server->Segments("a").value().size());
}

TEST(CollectorServerTest, RejectsUnusableHelloCodec) {
  const std::string path = TempUdsPath("badcodec");
  auto listened = CollectorServer::Listen("uds(path=" + path + ")");
  ASSERT_TRUE(listened.ok());
  ScopedCollector server(std::move(listened).value());

  ProducerClient::Options options;
  options.retries = 0;
  auto client = ProducerClient::Connect(server->endpoint(),
                                        "no-such-codec", options)
                    .value();
  // The collector answers the bad hello with an ERROR and closes. A
  // sequenced frame forces Flush() to wait for an ACK that can never
  // come, so the sticky failure surfaces deterministically.
  Status status = Status::OK();
  const auto opened = client->OpenStream("k", 1);
  if (!opened.ok()) {
    status = opened.status();
  } else {
    const std::vector<uint8_t> bogus_frame = {0x00};
    status = client->SendFrame(opened.value(), bogus_frame);
    if (status.ok()) status = client->Flush();
  }
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("codec"), std::string::npos)
      << status.message();
  std::remove(path.c_str());
}

// Writes every byte of `bytes` to `fd`, polling through short blocks.
void WriteAllBytes(int fd, const std::vector<uint8_t>& bytes) {
  size_t written = 0;
  while (written < bytes.size()) {
    size_t n = 0;
    const IoOutcome outcome = WriteSome(
        fd,
        std::span<const uint8_t>(bytes.data() + written,
                                 bytes.size() - written),
        &n);
    if (outcome == IoOutcome::kWouldBlock) {
      PollSocket(fd, /*want_write=*/true, 100);
      continue;
    }
    ASSERT_EQ(outcome, IoOutcome::kProgress);
    written += n;
  }
}

// Reads protocol messages from `fd` until an ACK with seq >= `want_seq`
// arrives (returns true) or the peer goes quiet/away (returns false).
bool WaitForAck(int fd, FrameSplitter* splitter, uint64_t want_seq) {
  uint8_t chunk[1024];
  for (int spins = 0; spins < 200; ++spins) {
    while (splitter->HasFrame()) {
      const std::span<const uint8_t> payload = splitter->NextFrame();
      const auto type = ParseMessageType(payload);
      if (!type.ok()) return false;
      if (type.value() == NetMessageType::kAck &&
          ParseAckMessage(payload).value().seq >= want_seq) {
        return true;
      }
    }
    PollSocket(fd, /*want_write=*/false, 50);
    size_t n = 0;
    const IoOutcome outcome =
        ReadSome(fd, std::span<uint8_t>(chunk, sizeof(chunk)), &n);
    if (outcome == IoOutcome::kWouldBlock) continue;
    if (outcome != IoOutcome::kProgress) return false;
    if (!splitter->Feed(std::span<const uint8_t>(chunk, n)).ok()) {
      return false;
    }
  }
  return false;
}

TEST(CollectorServerTest, ResentFramesAreDedupedBeforeTheCodec) {
  const std::string path = TempUdsPath("dedup");
  auto listened = CollectorServer::Listen("uds(path=" + path + ")");
  ASSERT_TRUE(listened.ok());
  ScopedCollector server(std::move(listened).value());
  const std::vector<std::vector<uint8_t>> frames =
      EncodeFrames("frame", SampleRecords());

  // Connection A delivers seq 1 and sees it ACKed — the collector has
  // provably applied it — then dies as if the ACK never made it home.
  {
    auto a = UdsConnect(path).value();
    std::vector<uint8_t> bytes;
    AppendHelloMessage(&bytes, "frame");
    AppendOpenStreamMessage(&bytes, 1, 1, "k");
    AppendFrameMessage(&bytes, 1, 1, frames[0]);
    WriteAllBytes(a.get(), bytes);
    FrameSplitter splitter;
    ASSERT_TRUE(WaitForAck(a.get(), &splitter, 1));
  }

  // Connection B replays seq 1 (the "lost ACK" resend) and continues
  // with seq 2. The replay must be dropped before the codec — applied
  // exactly once — and still be re-ACKed so B can trim its buffer.
  auto b = UdsConnect(path).value();
  std::vector<uint8_t> bytes;
  AppendHelloMessage(&bytes, "frame");
  AppendOpenStreamMessage(&bytes, 1, 1, "k");
  AppendFrameMessage(&bytes, 1, 1, frames[0]);
  AppendFrameMessage(&bytes, 1, 2, frames[1]);
  WriteAllBytes(b.get(), bytes);
  FrameSplitter splitter;
  ASSERT_TRUE(WaitForAck(b.get(), &splitter, 2));

  const CollectorServer::Stats stats = server->GetStats();
  EXPECT_EQ(stats.frames_deduped, 1u);
  EXPECT_EQ(stats.frames_applied, 2u);
  EXPECT_TRUE(server->KeyStatus("k").ok());
  std::remove(path.c_str());
}

TEST(CollectorServerTest, SequenceGapFailsTheConnection) {
  const std::string path = TempUdsPath("gap");
  auto listened = CollectorServer::Listen("uds(path=" + path + ")");
  ASSERT_TRUE(listened.ok());
  ScopedCollector server(std::move(listened).value());

  // Speak the protocol by hand to force a seq gap (a real client cannot).
  auto fd = UdsConnect(path).value();
  std::vector<uint8_t> bytes;
  AppendHelloMessage(&bytes, "frame");
  AppendOpenStreamMessage(&bytes, 1, 1, "k");
  const std::vector<std::vector<uint8_t>> frames =
      EncodeFrames("frame", SampleRecords());
  AppendFrameMessage(&bytes, 1, 5, frames[0]);  // seq 5 with nothing before
  size_t written = 0;
  while (written < bytes.size()) {
    size_t n = 0;
    const IoOutcome outcome = WriteSome(
        fd.get(),
        std::span<const uint8_t>(bytes.data() + written,
                                 bytes.size() - written),
        &n);
    if (outcome == IoOutcome::kWouldBlock) {
      PollSocket(fd.get(), /*want_write=*/true, 100);
      continue;
    }
    ASSERT_EQ(outcome, IoOutcome::kProgress);
    written += n;
  }
  // The collector must answer with an ERROR mentioning the gap and close.
  FrameSplitter splitter;
  std::string error_text;
  uint8_t chunk[1024];
  for (int spins = 0; spins < 200 && error_text.empty(); ++spins) {
    PollSocket(fd.get(), /*want_write=*/false, 50);
    size_t n = 0;
    const IoOutcome outcome =
        ReadSome(fd.get(), std::span<uint8_t>(chunk, sizeof(chunk)), &n);
    if (outcome == IoOutcome::kWouldBlock) continue;
    if (outcome != IoOutcome::kProgress) break;
    ASSERT_TRUE(splitter.Feed(std::span<const uint8_t>(chunk, n)).ok());
    while (splitter.HasFrame()) {
      const std::span<const uint8_t> payload = splitter.NextFrame();
      if (ParseMessageType(payload).value() == NetMessageType::kError) {
        error_text = ParseErrorMessage(payload).value();
      }
    }
  }
  EXPECT_NE(error_text.find("gap"), std::string::npos) << error_text;
  EXPECT_GE(server->GetStats().protocol_errors, 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace plastream
