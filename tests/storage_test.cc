// Copyright (c) 2026 The plastream Authors. MIT license.
//
// The storage-backend subsystem: registry semantics, spec validation at
// Build(), the memory/none built-ins, and the file backend's end-to-end
// contract — a file-backed pipeline's reloaded archive answers
// ValueAt/RangeAggregate identically to the in-memory backend, for every
// archive codec × shard count × threaded mode, including reopen-for-
// append and custom registries.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/random_walk.h"
#include "plastream.h"

namespace plastream {
namespace {

Signal Walk(uint64_t seed, double x0) {
  RandomWalkOptions o;
  o.count = 1200;
  o.max_delta = 1.0;
  o.x0 = x0;
  o.seed = seed;
  return *GenerateRandomWalk(o);
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "plastream_storage_" + name + ".plar";
}

// --- registry ---------------------------------------------------------------

TEST(StorageRegistryTest, GlobalHasBuiltins) {
  const auto names = StorageRegistry::Global().ListBackends();
  EXPECT_EQ(names, (std::vector<std::string>{"file", "memory", "none"}));
  EXPECT_TRUE(StorageRegistry::Global().Contains("file"));
  EXPECT_FALSE(StorageRegistry::Global().Contains("s3"));
}

TEST(StorageRegistryTest, RegisterRejectsDuplicatesAndBadArgs) {
  StorageRegistry registry;
  RegisterBuiltinStorageBackends(registry);
  EXPECT_EQ(registry
                .Register("memory",
                          [](const FilterSpec&) {
                            return Result<std::unique_ptr<StorageBackend>>(
                                MakeMemoryStorageBackend());
                          })
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry.Register("", nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST(StorageRegistryTest, MakeBackendValidatesSpecs) {
  const StorageRegistry& registry = StorageRegistry::Global();
  EXPECT_EQ(registry.MakeBackend("tape").status().code(),
            StatusCode::kNotFound);
  // Filter options have no meaning on a storage spec.
  EXPECT_EQ(registry.MakeBackend("memory(eps=1)").status().code(),
            StatusCode::kInvalidArgument);
  // Unknown parameters are typos worth failing on.
  EXPECT_EQ(registry.MakeBackend("memory(mode=fast)").status().code(),
            StatusCode::kInvalidArgument);
  // The file backend requires a path and validates its enums.
  EXPECT_EQ(registry.MakeBackend("file").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.MakeBackend("file(path=x,codec=zstd)").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.MakeBackend("file(path=x,sync=fsync)").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(registry.MakeBackend("file(path=x,codec=frame,sync=flush)")
                  .ok());
}

// --- Builder surface --------------------------------------------------------

TEST(PipelineStorageTest, BuildFailsOnBadStorageSpecs) {
  EXPECT_EQ(Pipeline::Builder()
                .DefaultSpec("cache(eps=1)")
                .Storage("tape")
                .Build()
                .status()
                .code(),
            StatusCode::kNotFound);
  // A parse failure in the spec string is deferred to Build().
  EXPECT_EQ(Pipeline::Builder()
                .DefaultSpec("cache(eps=1)")
                .Storage("file(path=")
                .Build()
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // The backend is opened at Build(): an unwritable path fails there.
  EXPECT_EQ(Pipeline::Builder()
                .DefaultSpec("cache(eps=1)")
                .Storage("file(path=/nonexistent-dir/x.plar)")
                .Build()
                .status()
                .code(),
            StatusCode::kIOError);
}

TEST(PipelineStorageTest, CustomRegistryIsUsed) {
  StorageRegistry registry;
  ASSERT_TRUE(registry
                  .Register("shadow",
                            [](const FilterSpec& spec)
                                -> Result<std::unique_ptr<StorageBackend>> {
                              PLASTREAM_RETURN_NOT_OK(spec.ExpectParamsIn({}));
                              return MakeMemoryStorageBackend();
                            })
                  .ok());
  auto pipeline = Pipeline::Builder()
                      .DefaultSpec("cache(eps=1)")
                      .Storage("shadow")
                      .WithStorageRegistry(&registry)
                      .Build();
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE((*pipeline)->Append("k", 0.0, 1.0).ok());
  ASSERT_TRUE((*pipeline)->Finish().ok());
  EXPECT_NE((*pipeline)->Store("k"), nullptr);
  EXPECT_EQ((*pipeline)->StorageSpec().family, "shadow");
  // The global registry does not know "shadow".
  EXPECT_EQ(Pipeline::Builder()
                .DefaultSpec("cache(eps=1)")
                .Storage("shadow")
                .Build()
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(PipelineStorageTest, StatsExposePerKeySegmentsAndStorageBytes) {
  const std::string path = TempPath("stats");
  std::remove(path.c_str());
  auto pipeline = Pipeline::Builder()
                      .DefaultSpec("slide(eps=0.5)")
                      .Storage("file(path=" + path + ")")
                      .Build()
                      .value();
  const Signal a = Walk(1, 10.0);
  const Signal b = Walk(2, 50.0);
  for (const DataPoint& p : a.points) ASSERT_TRUE(pipeline->Append("a", p).ok());
  for (const DataPoint& p : b.points) ASSERT_TRUE(pipeline->Append("b", p).ok());
  ASSERT_TRUE(pipeline->Finish().ok());

  const auto stats = pipeline->Stats();
  ASSERT_EQ(stats.per_key.size(), 2u);
  size_t per_key_bytes = 0;
  for (const auto& key_stats : stats.per_key) {
    const SegmentStore* store = pipeline->Store(key_stats.key);
    ASSERT_NE(store, nullptr);
    EXPECT_EQ(key_stats.segments, store->segment_count());
    EXPECT_GT(key_stats.storage_bytes, 0u);
    per_key_bytes += key_stats.storage_bytes;
  }
  // Backend total = per-stream records + the 12-byte archive header.
  EXPECT_EQ(stats.storage_bytes, per_key_bytes + 12);
  const auto a_stats = pipeline->StatsFor("a").value();
  EXPECT_EQ(a_stats.segments_archived, pipeline->Store("a")->segment_count());
  EXPECT_GT(a_stats.storage_bytes, 0u);
  std::remove(path.c_str());
}

TEST(PipelineStorageTest, MemoryBackendReportsZeroStorageBytes) {
  auto pipeline =
      Pipeline::Builder().DefaultSpec("cache(eps=1)").Build().value();
  ASSERT_TRUE(pipeline->Append("k", 0.0, 1.0).ok());
  ASSERT_TRUE(pipeline->Append("k", 1.0, 5.0).ok());
  ASSERT_TRUE(pipeline->Finish().ok());
  const auto stats = pipeline->Stats();
  EXPECT_EQ(stats.storage_bytes, 0u);
  ASSERT_EQ(stats.per_key.size(), 1u);
  EXPECT_EQ(stats.per_key[0].key, "k");
  EXPECT_EQ(stats.per_key[0].segments,
            pipeline->Store("k")->segment_count());
  EXPECT_EQ(pipeline->StorageSpec().family, "memory");
  EXPECT_EQ(pipeline->GetStorageBackend().name(), "memory");
}

// --- file backend end-to-end ------------------------------------------------

struct FileCase {
  const char* storage_codec;
  size_t shards;
  bool threaded;
};

class FileBackendTest : public ::testing::TestWithParam<FileCase> {};

// The acceptance matrix: for each archive codec × shard count × threaded
// mode, a file-backed pipeline and its reloaded archive answer every
// query identically to the in-memory backend.
TEST_P(FileBackendTest, ReloadedArchiveAnswersLikeMemoryBackend) {
  const FileCase param = GetParam();
  const std::string path = TempPath(
      std::string(param.storage_codec) + "_s" +
      std::to_string(param.shards) + (param.threaded ? "_t" : "_l"));
  std::remove(path.c_str());

  const std::vector<std::pair<std::string, Signal>> streams{
      {"web-1.cpu", Walk(11, 35.0)},
      {"web-2.cpu", Walk(12, 30.0)},
      {"db-1.iops", Walk(13, 120.0)},
      {"db-2.iops", Walk(14, 90.0)},
  };

  const auto build = [&](const std::string& storage_spec) {
    Pipeline::Builder builder;
    builder.DefaultSpec("slide(eps=0.4)")
        .PerKeySpec("db-1.iops", "swing(eps=1.5)")
        .Codec("delta")
        .Storage(storage_spec)
        .Shards(param.shards);
    if (param.threaded) builder.Threads().QueueCapacity(256);
    return builder.Build().value();
  };

  auto memory_pipeline = build("memory");
  auto file_pipeline = build("file(path=" + path + ",codec=" +
                             param.storage_codec + ")");
  for (const auto& [key, signal] : streams) {
    for (const DataPoint& p : signal.points) {
      ASSERT_TRUE(memory_pipeline->Append(key, p).ok());
      ASSERT_TRUE(file_pipeline->Append(key, p).ok());
    }
  }
  ASSERT_TRUE(memory_pipeline->Finish().ok());
  ASSERT_TRUE(file_pipeline->Finish().ok());

  auto reader = SegmentArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_FALSE((*reader)->torn_tail());
  EXPECT_EQ((*reader)->codec_name(), param.storage_codec);
  EXPECT_EQ((*reader)->stream_count(), streams.size());

  for (const auto& [key, signal] : streams) {
    const SegmentStore* truth = memory_pipeline->Store(key);
    ASSERT_NE(truth, nullptr);
    // The live file-backed store and the reloaded archive must both hold
    // the exact same chain.
    const SegmentStore* live = file_pipeline->Store(key);
    ASSERT_NE(live, nullptr);
    const SegmentStore* reloaded = (*reader)->Store(key);
    ASSERT_NE(reloaded, nullptr) << key;
    ASSERT_EQ(live->segment_count(), truth->segment_count());
    ASSERT_EQ(reloaded->segment_count(), truth->segment_count());
    for (size_t i = 0; i < truth->segment_count(); ++i) {
      EXPECT_EQ(live->segments()[i], truth->segments()[i]);
      EXPECT_EQ(reloaded->segments()[i], truth->segments()[i]) << key;
    }
    // Query sweep: point lookups and window aggregates agree bit-for-bit
    // (gaps included: both sides must miss identically).
    const double t0 = truth->t_min();
    const double t1 = truth->t_max();
    for (int i = 0; i <= 50; ++i) {
      const double t = t0 + (t1 - t0) * i / 50.0;
      const auto expected = truth->ValueAt(t, 0);
      const auto actual = (*reader)->ValueAt(key, t, 0);
      ASSERT_EQ(expected.ok(), actual.ok());
      if (expected.ok()) EXPECT_EQ(*expected, *actual);
    }
    const auto expected_agg = truth->Aggregate(t0, t1, 0).value();
    const auto actual_agg = (*reader)->RangeAggregate(key, t0, t1, 0).value();
    EXPECT_EQ(expected_agg.mean, actual_agg.mean);
    EXPECT_EQ(expected_agg.min, actual_agg.min);
    EXPECT_EQ(expected_agg.max, actual_agg.max);
    EXPECT_EQ(expected_agg.integral, actual_agg.integral);
    EXPECT_EQ(expected_agg.segments_touched, actual_agg.segments_touched);
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FileBackendTest,
    ::testing::Values(FileCase{"frame", 1, false}, FileCase{"delta", 1, false},
                      FileCase{"frame", 4, false}, FileCase{"delta", 4, false},
                      FileCase{"frame", 3, true}, FileCase{"delta", 3, true}),
    [](const ::testing::TestParamInfo<FileCase>& info) {
      return std::string(info.param.storage_codec) + "Shards" +
             std::to_string(info.param.shards) +
             (info.param.threaded ? "Threaded" : "Locked");
    });

TEST(FileBackendTest, ReopenForAppendContinuesTheArchive) {
  const std::string path = TempPath("reopen");
  std::remove(path.c_str());
  const Signal signal = Walk(7, 20.0);
  const size_t half = signal.size() / 2;

  const std::string spec = "file(path=" + path + ",codec=delta)";
  size_t first_run_segments = 0;
  {
    auto pipeline = Pipeline::Builder()
                        .DefaultSpec("slide(eps=0.3)")
                        .Storage(spec)
                        .Build()
                        .value();
    for (size_t i = 0; i < half; ++i) {
      ASSERT_TRUE(pipeline->Append("k", signal.points[i]).ok());
    }
    ASSERT_TRUE(pipeline->Finish().ok());
    first_run_segments = pipeline->Store("k")->segment_count();
    ASSERT_GT(first_run_segments, 0u);
  }
  {
    auto pipeline = Pipeline::Builder()
                        .DefaultSpec("slide(eps=0.3)")
                        .Storage(spec)
                        .Build()
                        .value();
    // Recovered streams are visible before any new Append touches them:
    // Keys/Store/Stats all serve the archive's data.
    EXPECT_EQ(pipeline->Keys(), std::vector<std::string>{"k"});
    ASSERT_NE(pipeline->Store("k"), nullptr);
    EXPECT_EQ(pipeline->Store("k")->segment_count(), first_run_segments);
    const auto pre_stats = pipeline->Stats();
    EXPECT_EQ(pre_stats.streams, 1u);
    ASSERT_EQ(pre_stats.per_key.size(), 1u);
    EXPECT_EQ(pre_stats.per_key[0].segments, first_run_segments);
    EXPECT_GT(pre_stats.per_key[0].storage_bytes, 0u);
    EXPECT_EQ(pipeline->StatsFor("k")->segments_archived,
              first_run_segments);
    EXPECT_EQ(pipeline->StatsFor("k")->points, 0u);
    for (size_t i = half; i < signal.size(); ++i) {
      ASSERT_TRUE(pipeline->Append("k", signal.points[i]).ok());
    }
    ASSERT_TRUE(pipeline->Finish().ok());
    // The live store contains the recovered first-run segments plus the
    // second run's.
    EXPECT_GT(pipeline->Store("k")->segment_count(), first_run_segments);
    EXPECT_DOUBLE_EQ(pipeline->Store("k")->t_min(), signal.points[0].t);
  }
  auto reader = SegmentArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE((*reader)->torn_tail());
  const SegmentStore* store = (*reader)->Store("k");
  ASSERT_NE(store, nullptr);
  EXPECT_GT(store->segment_count(), first_run_segments);
  EXPECT_DOUBLE_EQ(store->t_min(), signal.points[0].t);
  EXPECT_DOUBLE_EQ(store->t_max(), signal.points.back().t);
  std::remove(path.c_str());
}

TEST(FileBackendTest, ReopenWithDifferentCodecFailsAtBuild) {
  const std::string path = TempPath("codec_mismatch");
  std::remove(path.c_str());
  {
    auto pipeline = Pipeline::Builder()
                        .DefaultSpec("cache(eps=1)")
                        .Storage("file(path=" + path + ",codec=delta)")
                        .Build()
                        .value();
    ASSERT_TRUE(pipeline->Append("k", 0.0, 1.0).ok());
    ASSERT_TRUE(pipeline->Finish().ok());
  }
  const auto rebuilt = Pipeline::Builder()
                           .DefaultSpec("cache(eps=1)")
                           .Storage("file(path=" + path + ",codec=frame)")
                           .Build();
  EXPECT_EQ(rebuilt.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(FileBackendTest, RecoveredStreamRejectsDimensionalityChange) {
  const std::string path = TempPath("dims");
  std::remove(path.c_str());
  {
    auto pipeline = Pipeline::Builder()
                        .DefaultSpec("cache(eps=1)")
                        .Storage("file(path=" + path + ")")
                        .Build()
                        .value();
    ASSERT_TRUE(pipeline->Append("k", 0.0, 1.0).ok());
    ASSERT_TRUE(pipeline->Finish().ok());
  }
  auto pipeline = Pipeline::Builder()
                      .DefaultSpec("cache(eps=1:1)")  // now 2-dimensional
                      .Storage("file(path=" + path + ")")
                      .Build()
                      .value();
  // The mismatch surfaces when the key's stream is first opened.
  EXPECT_EQ(
      pipeline->Append("k", DataPoint(100.0, {1.0, 2.0})).code(),
      StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(FileBackendTest, SyncFlushPersistsWithoutFinish) {
  const std::string path = TempPath("sync_flush");
  std::remove(path.c_str());
  auto pipeline = Pipeline::Builder()
                      .DefaultSpec("cache(eps=1)")
                      .Storage("file(path=" + path + ",sync=flush)")
                      .Build()
                      .value();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pipeline->Append("k", i, (i / 10) * 10.0).ok());
  }
  // No Flush(), no Finish(): with sync=flush every archived segment is
  // already on the file, so a reader sees all closed segments.
  auto reader = SegmentArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_GT((*reader)->segment_count(), 0u);
  ASSERT_TRUE(pipeline->Finish().ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace plastream
