// Copyright (c) 2026 The plastream Authors. MIT license.
//
// Optimality properties, checked against an independent exact oracle
// (eval/chebyshev.h):
//
//  - The slide filter's filtering intervals are *maximal*: when the filter
//    starts a new interval at point p, no line of any slope/intercept can
//    represent the just-closed interval plus p within ε. This is the
//    operational content of Lemmas 4.1-4.2 (u/l are the extreme feasible
//    lines), verified without reusing any of the filter's geometry.
//  - The swing filter is maximal within its class (lines through the
//    pivot), verified via exact slope-interval intersection.
//  - The minimax oracle itself is validated on closed forms first.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/slide_filter.h"
#include "core/swing_filter.h"
#include "datagen/random_walk.h"
#include "datagen/sea_surface.h"
#include "eval/chebyshev.h"

namespace plastream {
namespace {

// ---------------------------------------------------------------------------
// Oracle self-tests
// ---------------------------------------------------------------------------

TEST(MinimaxFitTest, ExactLineHasZeroError) {
  std::vector<Point2> points;
  for (int j = 0; j < 20; ++j) points.push_back({double(j), 3.0 - 0.5 * j});
  const MinimaxFit fit = MinimaxLinearFit(points);
  EXPECT_NEAR(fit.max_error, 0.0, 1e-12);
  EXPECT_NEAR(fit.slope, -0.5, 1e-12);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
}

TEST(MinimaxFitTest, SymmetricVeeHasKnownError) {
  // Points: (0,1), (1,0), (2,1): best line is horizontal at 0.5 with
  // error 0.5.
  const std::vector<Point2> points{{0, 1}, {1, 0}, {2, 1}};
  const MinimaxFit fit = MinimaxLinearFit(points);
  EXPECT_NEAR(fit.max_error, 0.5, 1e-12);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 0.5, 1e-12);
}

TEST(MinimaxFitTest, SinglePointAndPair) {
  const std::vector<Point2> one{{5, 7}};
  EXPECT_NEAR(MinimaxLinearFit(one).max_error, 0.0, 1e-12);
  const std::vector<Point2> two{{0, 1}, {4, 9}};
  EXPECT_NEAR(MinimaxLinearFit(two).max_error, 0.0, 1e-12);
}

TEST(MinimaxFitTest, OracleNeverBeatenByRandomLines) {
  // The oracle's optimum must lower-bound every sampled line's error.
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Point2> points;
    double t = 0.0;
    for (int j = 0; j < 30; ++j) {
      t += rng.Uniform(0.5, 1.5);
      points.push_back({t, rng.Uniform(-5.0, 5.0)});
    }
    const MinimaxFit fit = MinimaxLinearFit(points);
    for (int s = 0; s < 200; ++s) {
      const double a = rng.Uniform(-10.0, 10.0);
      const double b = rng.Uniform(-10.0, 10.0);
      double err = 0.0;
      for (const Point2& p : points) {
        err = std::max(err, std::abs(p.x - (a * p.t + b)));
      }
      EXPECT_GE(err + 1e-9, fit.max_error);
    }
  }
}

TEST(MinimaxFitTest, HandlesDuplicateTimestamps) {
  const std::vector<Point2> points{{0, 0}, {0, 2}, {1, 1}};
  // Any line has error >= 1 at t=0; horizontal at 1 achieves it.
  EXPECT_NEAR(MinimaxLinearFit(points).max_error, 1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Slide interval maximality
// ---------------------------------------------------------------------------

// Replays a 1-d signal through a junction-disabled slide filter (so each
// emitted segment spans exactly one filtering interval) and verifies with
// the oracle that each interval is feasible and each interval extended by
// its violating point is not.
void CheckSlideMaximality(const Signal& signal, double eps) {
  auto filter = SlideFilter::Create(FilterOptions::Scalar(eps),
                                    SlideHullMode::kConvexHull, nullptr,
                                    SlideJunctionPolicy::kDisabled)
                    .value();
  for (const DataPoint& p : signal.points) {
    ASSERT_TRUE(filter->Append(p).ok());
  }
  ASSERT_TRUE(filter->Finish().ok());
  const auto segments = filter->TakeSegments();

  size_t next_point = 0;
  for (size_t k = 0; k < segments.size(); ++k) {
    std::vector<Point2> interval;
    while (next_point < signal.size() &&
           signal.points[next_point].t <= segments[k].t_end) {
      interval.push_back(
          {signal.points[next_point].t, signal.points[next_point].x[0]});
      ++next_point;
    }
    ASSERT_FALSE(interval.empty()) << "segment " << k;
    EXPECT_TRUE(LineFitExists(interval, eps))
        << "segment " << k << " is infeasible?!";
    if (next_point < signal.size()) {
      interval.push_back(
          {signal.points[next_point].t, signal.points[next_point].x[0]});
      EXPECT_FALSE(LineFitExists(interval, eps, -1e-9))
          << "segment " << k
          << " closed although the violating point still fits: interval "
             "not maximal";
    }
  }
  EXPECT_EQ(next_point, signal.size());
}

TEST(SlideOptimalityTest, IntervalsMaximalOnOscillatingWalk) {
  RandomWalkOptions o;
  o.count = 1200;
  o.decrease_probability = 0.5;
  o.max_delta = 2.0;
  o.seed = 71;
  CheckSlideMaximality(*GenerateRandomWalk(o), 0.75);
}

TEST(SlideOptimalityTest, IntervalsMaximalOnSmoothWalk) {
  RandomWalkOptions o;
  o.count = 1200;
  o.decrease_probability = 0.2;
  o.max_delta = 0.8;
  o.seed = 72;
  CheckSlideMaximality(*GenerateRandomWalk(o), 1.5);
}

TEST(SlideOptimalityTest, IntervalsMaximalOnSeaSurface) {
  const Signal sst = *GenerateSeaSurfaceTemperature({});
  CheckSlideMaximality(sst, sst.Range(0) * 0.01);
}

TEST(SlideOptimalityTest, IntervalsMaximalAcrossSeeds) {
  for (uint64_t seed = 200; seed < 208; ++seed) {
    RandomWalkOptions o;
    o.count = 600;
    o.decrease_probability = 0.4;
    o.max_delta = 1.5;
    o.seed = seed;
    CheckSlideMaximality(*GenerateRandomWalk(o), 0.5);
  }
}

// ---------------------------------------------------------------------------
// Swing interval maximality (within lines through the pivot)
// ---------------------------------------------------------------------------

TEST(SwingOptimalityTest, IntervalsMaximalThroughPivot) {
  RandomWalkOptions o;
  o.count = 2000;
  o.decrease_probability = 0.45;
  o.max_delta = 1.2;
  o.seed = 73;
  const Signal signal = *GenerateRandomWalk(o);
  const double eps = 0.6;
  auto filter = SwingFilter::Create(FilterOptions::Scalar(eps)).value();
  for (const DataPoint& p : signal.points) {
    ASSERT_TRUE(filter->Append(p).ok());
  }
  ASSERT_TRUE(filter->Finish().ok());
  const auto segments = filter->TakeSegments();

  // Feasible-slope interval for covering (t, x) from pivot (t0, x0):
  // [(x - eps - x0) / (t - t0), (x + eps - x0) / (t - t0)].
  size_t next_point = 0;
  // Skip the first data point: it *is* the first pivot.
  ASSERT_DOUBLE_EQ(segments[0].t_start, signal.points[0].t);
  ++next_point;
  for (size_t k = 0; k < segments.size(); ++k) {
    const double t0 = segments[k].t_start;
    const double x0 = segments[k].x_start[0];
    double lo = -std::numeric_limits<double>::infinity();
    double hi = std::numeric_limits<double>::infinity();
    while (next_point < signal.size() &&
           signal.points[next_point].t <= segments[k].t_end) {
      const DataPoint& p = signal.points[next_point];
      lo = std::max(lo, (p.x[0] - eps - x0) / (p.t - t0));
      hi = std::min(hi, (p.x[0] + eps - x0) / (p.t - t0));
      ++next_point;
    }
    EXPECT_LE(lo, hi + 1e-9) << "segment " << k << " infeasible?!";
    if (next_point < signal.size()) {
      const DataPoint& p = signal.points[next_point];
      const double lo2 =
          std::max(lo, (p.x[0] - eps - x0) / (p.t - t0));
      const double hi2 =
          std::min(hi, (p.x[0] + eps - x0) / (p.t - t0));
      EXPECT_GT(lo2, hi2 - 1e-9)
          << "segment " << k
          << " closed although the violating point still fits the pivot "
             "pencil: interval not maximal";
    }
  }
}

}  // namespace
}  // namespace plastream
