// Copyright (c) 2026 The plastream Authors. MIT license.
//
// Property-based conformance suite (ctest label: property).
//
// Every run draws PLASTREAM_PROPERTY_SEEDS seeded adversarial scenarios
// (default 25; CI's property job raises it past 100) starting at
// PLASTREAM_PROPERTY_BASE_SEED (default 20260807) and checks the full
// conformance matrix for each: the L-infinity precision contract at
// every admitted timestamp, chain validity, guard-counter accounting and
// per-key byte-identity across shards x threading x codec x storage x
// transport. A failure prints the scenario description (which embeds the
// seed) plus the exact environment variables that reproduce it alone.

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "tests/harness/harness.h"

namespace plastream {
namespace harness {
namespace {

constexpr uint64_t kDefaultBaseSeed = 20260807;
constexpr uint64_t kDefaultSeedCount = 25;

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  return (end != nullptr && *end == '\0') ? value : fallback;
}

std::string ReproLine(uint64_t seed) {
  return "reproduce just this scenario with:\n  PLASTREAM_PROPERTY_BASE_SEED=" +
         std::to_string(seed) +
         " PLASTREAM_PROPERTY_SEEDS=1 ctest -R property_harness_test "
         "--output-on-failure";
}

TEST(PropertyHarness, SeededScenariosHoldAllInvariants) {
  const uint64_t base = EnvOr("PLASTREAM_PROPERTY_BASE_SEED", kDefaultBaseSeed);
  const uint64_t count = EnvOr("PLASTREAM_PROPERTY_SEEDS", kDefaultSeedCount);
  for (uint64_t seed = base; seed < base + count; ++seed) {
    const Status checked = CheckSeed(seed);
    ASSERT_TRUE(checked.ok()) << checked.message() << "\n" << ReproLine(seed);
  }
}

TEST(PropertyHarness, ScenarioGenerationIsDeterministic) {
  const Scenario a = GenerateScenario(kDefaultBaseSeed);
  const Scenario b = GenerateScenario(kDefaultBaseSeed);
  ASSERT_EQ(a.arrivals.size(), b.arrivals.size());
  EXPECT_TRUE(a.arrivals == b.arrivals);
  EXPECT_EQ(a.policy, b.policy);
  ASSERT_EQ(a.streams.size(), b.streams.size());
  for (size_t s = 0; s < a.streams.size(); ++s) {
    EXPECT_TRUE(a.streams[s].truth.points == b.streams[s].truth.points);
    EXPECT_EQ(a.streams[s].spec.Format(), b.streams[s].spec.Format());
  }

  // Neighbouring seeds draw different workloads.
  const Scenario c = GenerateScenario(kDefaultBaseSeed + 1);
  EXPECT_FALSE(a.arrivals == c.arrivals);
}

TEST(PropertyHarness, DescribeEmbedsSeedPolicyAndInjectionTallies) {
  const Scenario scenario = GenerateScenario(42);
  const std::string description = scenario.Describe();
  EXPECT_NE(description.find("seed=42"), std::string::npos) << description;
  EXPECT_NE(description.find("policy="), std::string::npos) << description;
  EXPECT_NE(description.find("late="), std::string::npos) << description;
  EXPECT_NE(description.find("dups="), std::string::npos) << description;
  EXPECT_NE(description.find("nans="), std::string::npos) << description;
}

// The acceptance self-test: a deliberately corrupted output must be
// caught by the invariant checkers, and the resulting failure must name
// the seed that reproduces the scenario.
TEST(PropertyHarness, InjectedEpsViolationIsCaughtWithItsSeed) {
  const uint64_t seed = kDefaultBaseSeed;
  const Scenario scenario = GenerateScenario(seed);
  auto run = RunScenario(scenario, VariantsFor(seed).front());
  ASSERT_TRUE(run.ok()) << run.status().message();

  // Sanity: the untouched output passes.
  for (size_t s = 0; s < scenario.streams.size(); ++s) {
    ASSERT_TRUE(
        CheckStreamInvariants(scenario.streams[s], run.value().segments[s])
            .ok());
  }

  // Shift one whole segment (and its connected successor's shared start,
  // keeping the chain valid) by 10 eps in dimension 0: the admitted
  // samples inside it are now far outside the band.
  std::vector<Segment> corrupted = run.value().segments[0];
  ASSERT_FALSE(corrupted.empty());
  const double shift = 10.0 * scenario.streams[0].epsilon[0] + 1.0;
  const size_t victim = corrupted.size() / 2;
  corrupted[victim].x_start[0] += shift;
  corrupted[victim].x_end[0] += shift;
  if (victim > 0 && corrupted[victim].connected_to_prev) {
    corrupted[victim - 1].x_end[0] += shift;
  }
  if (victim + 1 < corrupted.size() &&
      corrupted[victim + 1].connected_to_prev) {
    corrupted[victim + 1].x_start[0] += shift;
  }

  const Status caught =
      CheckStreamInvariants(scenario.streams[0], corrupted);
  ASSERT_FALSE(caught.ok()) << "corrupted output passed the checker";
  EXPECT_EQ(caught.code(), StatusCode::kFailedPrecondition);

  // The harness wraps checker failures with the scenario description, so
  // the red run names its reproducible seed.
  const std::string wrapped =
      "[" + scenario.Describe() + "] " + caught.message();
  EXPECT_NE(wrapped.find("seed=" + std::to_string(seed)), std::string::npos)
      << wrapped;
}

// A broken connected-chain claim (invariant 1) is caught too.
TEST(PropertyHarness, BrokenChainIsCaught) {
  const Scenario scenario = GenerateScenario(kDefaultBaseSeed);
  auto run = RunScenario(scenario, VariantsFor(kDefaultBaseSeed).front());
  ASSERT_TRUE(run.ok()) << run.status().message();

  std::vector<Segment> corrupted = run.value().segments[0];
  ASSERT_FALSE(corrupted.empty());
  // Claim a connection that does not hold.
  Segment& victim = corrupted[corrupted.size() / 2];
  victim.connected_to_prev = true;
  victim.x_start[0] += 1e6;
  victim.x_end[0] += 1e6;

  const Status caught = CheckStreamInvariants(scenario.streams[0], corrupted);
  ASSERT_FALSE(caught.ok());
}

// Cross-variant divergence (invariant 3) is caught and names both
// variants.
TEST(PropertyHarness, DivergentVariantsAreCaught) {
  const Scenario scenario = GenerateScenario(kDefaultBaseSeed);
  auto run = RunScenario(scenario, VariantsFor(kDefaultBaseSeed).front());
  ASSERT_TRUE(run.ok()) << run.status().message();

  std::vector<Segment> other = run.value().segments[0];
  ASSERT_FALSE(other.empty());
  other.back().x_end[0] += 0.5;

  const Status caught = CheckSegmentsIdentical(
      scenario.streams[0].key, other, "mutant", run.value().segments[0],
      "reference");
  ASSERT_FALSE(caught.ok());
  EXPECT_NE(caught.message().find("mutant"), std::string::npos);
  EXPECT_NE(caught.message().find("reference"), std::string::npos);
}

}  // namespace
}  // namespace harness
}  // namespace plastream
