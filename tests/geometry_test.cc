// Copyright (c) 2026 The plastream Authors. MIT license.
//
// Unit and property tests for src/geometry: lines, incremental convex
// hulls, and extreme-slope tangent searches.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geometry/convex_hull.h"
#include "geometry/line.h"
#include "geometry/point.h"
#include "geometry/tangent.h"

namespace plastream {
namespace {

// ---------------------------------------------------------------------------
// Cross / Line
// ---------------------------------------------------------------------------

TEST(CrossTest, SignMatchesTurnDirection) {
  const Point2 o{0, 0}, a{1, 0};
  EXPECT_GT(Cross(o, a, Point2{1, 1}), 0.0);   // counter-clockwise
  EXPECT_LT(Cross(o, a, Point2{1, -1}), 0.0);  // clockwise
  EXPECT_DOUBLE_EQ(Cross(o, a, Point2{2, 0}), 0.0);  // collinear
}

TEST(LineTest, ThroughTwoPoints) {
  const auto line = Line::Through(Point2{0, 1}, Point2{2, 5});
  ASSERT_TRUE(line.has_value());
  EXPECT_DOUBLE_EQ(line->slope(), 2.0);
  EXPECT_DOUBLE_EQ(line->ValueAt(0), 1.0);
  EXPECT_DOUBLE_EQ(line->ValueAt(3), 7.0);
}

TEST(LineTest, ThroughRejectsVertical) {
  EXPECT_FALSE(Line::Through(Point2{1, 0}, Point2{1, 5}).has_value());
}

TEST(LineTest, IntersectionTime) {
  const Line a(Point2{0, 0}, 1.0);
  const Line b(Point2{0, 4}, -1.0);
  const auto t = a.IntersectionTime(b);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 2.0);
  EXPECT_DOUBLE_EQ(a.ValueAt(*t), b.ValueAt(*t));
}

TEST(LineTest, ParallelLinesDoNotIntersect) {
  const Line a(Point2{0, 0}, 0.5);
  const Line b(Point2{0, 1}, 0.5);
  EXPECT_FALSE(a.IntersectionTime(b).has_value());
  EXPECT_FALSE(a.IntersectionTime(a).has_value());
}

TEST(LineTest, VerticalOffsetSign) {
  const Line line(Point2{0, 0}, 1.0);
  EXPECT_GT(line.VerticalOffset(Point2{1, 2}), 0.0);
  EXPECT_LT(line.VerticalOffset(Point2{1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(line.VerticalOffset(Point2{3, 3}), 0.0);
}

TEST(LineTest, AnchoredAtPreservesGraph) {
  const Line line(Point2{10, 3}, -0.25);
  const Line moved = line.AnchoredAt(42.0);
  for (double t : {-5.0, 0.0, 17.5, 100.0}) {
    EXPECT_DOUBLE_EQ(line.ValueAt(t), moved.ValueAt(t));
  }
}

// ---------------------------------------------------------------------------
// IncrementalHull
// ---------------------------------------------------------------------------

TEST(IncrementalHullTest, EmptyAndSinglePoint) {
  IncrementalHull hull;
  EXPECT_TRUE(hull.empty());
  EXPECT_EQ(hull.vertex_count(), 0u);
  hull.Add(Point2{1, 2});
  EXPECT_EQ(hull.point_count(), 1u);
  EXPECT_EQ(hull.vertex_count(), 1u);
  EXPECT_EQ(hull.upper().size(), 1u);
  EXPECT_EQ(hull.lower().size(), 1u);
}

TEST(IncrementalHullTest, CollinearPointsCollapse) {
  IncrementalHull hull;
  for (int i = 0; i < 10; ++i) hull.Add(Point2{double(i), 2.0 * i});
  EXPECT_EQ(hull.upper().size(), 2u);
  EXPECT_EQ(hull.lower().size(), 2u);
  EXPECT_EQ(hull.vertex_count(), 2u);
}

TEST(IncrementalHullTest, VShapeKeepsMiddleOnLowerChainOnly) {
  IncrementalHull hull;
  hull.Add(Point2{0, 1});
  hull.Add(Point2{1, 0});
  hull.Add(Point2{2, 1});
  EXPECT_EQ(hull.upper().size(), 2u);  // middle dips below the chord
  EXPECT_EQ(hull.lower().size(), 3u);
  EXPECT_EQ(hull.vertex_count(), 3u);
}

TEST(IncrementalHullTest, ClearResets) {
  IncrementalHull hull;
  hull.Add(Point2{0, 0});
  hull.Add(Point2{1, 1});
  hull.Clear();
  EXPECT_TRUE(hull.empty());
  EXPECT_EQ(hull.vertex_count(), 0u);
}

TEST(IncrementalHullTest, ForEachVertexVisitsDistinctVertices) {
  IncrementalHull hull;
  hull.Add(Point2{0, 0});
  hull.Add(Point2{1, 3});
  hull.Add(Point2{2, -1});
  hull.Add(Point2{3, 0});
  size_t visited = 0;
  hull.ForEachVertex([&](const Point2&) { ++visited; });
  EXPECT_EQ(visited, hull.vertex_count());
}

// Property: the incremental hull equals the batch reference construction,
// and every input point lies inside (or on) the hull band.
TEST(IncrementalHullTest, PropertyMatchesBatchReference) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    IncrementalHull hull;
    std::vector<Point2> points;
    const int n = 2 + static_cast<int>(rng.UniformInt(200));
    double t = 0.0;
    for (int i = 0; i < n; ++i) {
      t += rng.Uniform(0.1, 2.0);
      points.push_back(Point2{t, rng.Uniform(-50.0, 50.0)});
      hull.Add(points.back());
    }
    const HullChains reference = BuildHullChains(points);
    ASSERT_EQ(hull.upper().size(), reference.upper.size()) << "trial " << trial;
    ASSERT_EQ(hull.lower().size(), reference.lower.size()) << "trial " << trial;
    for (size_t i = 0; i < reference.upper.size(); ++i) {
      EXPECT_EQ(hull.upper()[i], reference.upper[i]);
    }
    for (size_t i = 0; i < reference.lower.size(); ++i) {
      EXPECT_EQ(hull.lower()[i], reference.lower[i]);
    }
  }
}

// Property: chain convexity — upper chain turns clockwise, lower chain
// counter-clockwise, both strictly.
TEST(IncrementalHullTest, PropertyChainsAreStrictlyConvex) {
  Rng rng(123);
  for (int trial = 0; trial < 30; ++trial) {
    IncrementalHull hull;
    double t = 0.0;
    const int n = 3 + static_cast<int>(rng.UniformInt(300));
    for (int i = 0; i < n; ++i) {
      t += 1.0;
      hull.Add(Point2{t, rng.Uniform(0.0, 10.0)});
    }
    const auto upper = hull.upper();
    for (size_t i = 2; i < upper.size(); ++i) {
      EXPECT_LT(Cross(upper[i - 2], upper[i - 1], upper[i]), 0.0);
    }
    const auto lower = hull.lower();
    for (size_t i = 2; i < lower.size(); ++i) {
      EXPECT_GT(Cross(lower[i - 2], lower[i - 1], lower[i]), 0.0);
    }
  }
}

// Property: all points lie on or below the upper chain and on or above the
// lower chain (piecewise evaluation).
TEST(IncrementalHullTest, PropertyChainsBoundAllPoints) {
  Rng rng(321);
  IncrementalHull hull;
  std::vector<Point2> points;
  double t = 0.0;
  for (int i = 0; i < 500; ++i) {
    t += rng.Uniform(0.5, 1.5);
    points.push_back(Point2{t, rng.Uniform(-5.0, 5.0)});
    hull.Add(points.back());
  }
  auto chain_value_at = [](std::span<const Point2> chain, double time) {
    // Linear interpolation between adjacent chain vertices.
    for (size_t i = 1; i < chain.size(); ++i) {
      if (time <= chain[i].t) {
        const auto line = Line::Through(chain[i - 1], chain[i]);
        return line->ValueAt(time);
      }
    }
    return chain.back().x;
  };
  for (const Point2& p : points) {
    EXPECT_LE(p.x, chain_value_at(hull.upper(), p.t) + 1e-9);
    EXPECT_GE(p.x, chain_value_at(hull.lower(), p.t) - 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Tangent search
// ---------------------------------------------------------------------------

TEST(TangentTest, PivotMustBeLaterThanVertices) {
  const std::vector<Point2> points{{0, 0}, {1, 1}};
  const auto result =
      ExtremeSlopeOverPoints(points, Point2{0.5, 5}, 0.0, /*minimize=*/true);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.vertex, (Point2{0, 0}));  // only the earlier point counts
}

TEST(TangentTest, NoEligibleVertices) {
  const std::vector<Point2> points{{2, 0}, {3, 1}};
  const auto result =
      ExtremeSlopeOverPoints(points, Point2{1, 5}, 0.0, /*minimize=*/true);
  EXPECT_FALSE(result.found);
}

TEST(TangentTest, MinimizeAndMaximizePickOpposites) {
  const std::vector<Point2> points{{0, 0}, {1, 4}};
  const Point2 pivot{2, 2};
  const auto lo = ExtremeSlopeOverPoints(points, pivot, 0.0, true);
  const auto hi = ExtremeSlopeOverPoints(points, pivot, 0.0, false);
  ASSERT_TRUE(lo.found);
  ASSERT_TRUE(hi.found);
  EXPECT_DOUBLE_EQ(lo.slope, -2.0);  // through (1,4)
  EXPECT_DOUBLE_EQ(hi.slope, 1.0);   // through (0,0)
}

TEST(TangentTest, VertexOffsetShiftsCandidates) {
  const std::vector<Point2> points{{0, 0}};
  const Point2 pivot{1, 0};
  const auto r = ExtremeSlopeOverPoints(points, pivot, 0.5, true);
  ASSERT_TRUE(r.found);
  EXPECT_DOUBLE_EQ(r.slope, -0.5);  // through (0, 0.5) and (1, 0)
}

// Property: hull-restricted search returns the same extreme slope as the
// brute-force all-points search (Lemma 4.3).
TEST(TangentTest, PropertyHullSearchEqualsBruteForce) {
  Rng rng(77);
  for (int trial = 0; trial < 60; ++trial) {
    IncrementalHull hull;
    std::vector<Point2> points;
    double t = 0.0;
    const int n = 2 + static_cast<int>(rng.UniformInt(150));
    for (int i = 0; i < n; ++i) {
      t += rng.Uniform(0.2, 1.2);
      points.push_back(Point2{t, rng.Uniform(-10.0, 10.0)});
      hull.Add(points.back());
    }
    const Point2 pivot{t + rng.Uniform(0.2, 1.0), rng.Uniform(-10.0, 10.0)};
    for (const bool minimize : {true, false}) {
      const double offset = minimize ? -0.5 : 0.5;
      const auto brute =
          ExtremeSlopeOverPoints(points, pivot, offset, minimize);
      const auto hulled = ExtremeSlopeOverHull(hull, pivot, offset, minimize);
      ASSERT_TRUE(brute.found);
      ASSERT_TRUE(hulled.found);
      EXPECT_NEAR(brute.slope, hulled.slope, 1e-12) << "trial " << trial;
    }
  }
}

// Property: the ternary-search over the correct chain matches brute force.
// u-updates (minimize) touch the upper chain, l-updates the lower chain.
TEST(TangentTest, PropertyBinarySearchEqualsBruteForce) {
  Rng rng(78);
  for (int trial = 0; trial < 60; ++trial) {
    IncrementalHull hull;
    std::vector<Point2> points;
    double t = 0.0;
    const int n = 2 + static_cast<int>(rng.UniformInt(400));
    for (int i = 0; i < n; ++i) {
      t += rng.Uniform(0.2, 1.2);
      points.push_back(Point2{t, rng.Uniform(-10.0, 10.0)});
      hull.Add(points.back());
    }
    const Point2 pivot{t + rng.Uniform(0.2, 1.0), rng.Uniform(-10.0, 10.0)};
    for (const bool minimize : {true, false}) {
      const double offset = minimize ? -0.5 : 0.5;
      const auto brute =
          ExtremeSlopeOverPoints(points, pivot, offset, minimize);
      const auto chain = minimize ? hull.upper() : hull.lower();
      const auto binary =
          ExtremeSlopeOverChainBinary(chain, pivot, offset, minimize);
      ASSERT_TRUE(brute.found);
      ASSERT_TRUE(binary.found);
      EXPECT_NEAR(brute.slope, binary.slope, 1e-12)
          << "trial " << trial << " minimize " << minimize;
    }
  }
}

}  // namespace
}  // namespace plastream
