// Copyright (c) 2026 The plastream Authors. MIT license.
//
// Cross-filter property suite: the paper's precision guarantee (Theorems
// 3.1 and 4.1) and the structural invariants of emitted segment chains,
// exercised over every filter family × a zoo of signal shapes × a sweep of
// precision widths. This is the test the whole library hangs off.

#include <cctype>
#include <cmath>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/filter_registry.h"
#include "core/reconstruction.h"
#include "core/slide_filter.h"
#include "datagen/correlated_walk.h"
#include "datagen/random_walk.h"
#include "datagen/sea_surface.h"
#include "datagen/shapes.h"
#include "datagen/signal.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "tests/harness/invariants.h"

namespace plastream {
namespace {

struct NamedSignal {
  std::string name;
  Signal signal;
};

// The signal zoo: every shape Section 5 discusses plus adversarial extras.
std::vector<NamedSignal> TestSignals() {
  std::vector<NamedSignal> signals;
  {
    RandomWalkOptions o;
    o.count = 1500;
    o.decrease_probability = 0.5;
    o.max_delta = 4.0;
    o.seed = 1;
    signals.push_back({"walk_oscillating", *GenerateRandomWalk(o)});
  }
  {
    RandomWalkOptions o;
    o.count = 1500;
    o.decrease_probability = 0.0;  // monotone increasing
    o.max_delta = 4.0;
    o.seed = 2;
    signals.push_back({"walk_monotone", *GenerateRandomWalk(o)});
  }
  {
    RandomWalkOptions o;
    o.count = 1500;
    o.decrease_probability = 0.25;
    o.max_delta = 40.0;  // large jumps relative to epsilon
    o.seed = 3;
    signals.push_back({"walk_jumpy", *GenerateRandomWalk(o)});
  }
  {
    SeaSurfaceOptions o;
    signals.push_back({"sea_surface", *GenerateSeaSurfaceTemperature(o)});
  }
  signals.push_back({"sine", *GenerateSine(1200, 10.0, 200.0)});
  signals.push_back({"line", *GenerateLine(800, 2.0, 0.5)});
  signals.push_back({"steps", *GenerateSteps(1200, 40, 8.0, 4)});
  signals.push_back({"spikes", *GenerateSpikes(1200, 0.0, 10.0, 0.05, 5)});
  signals.push_back({"sawtooth", *GenerateSawtooth(1200, 25, 10.0)});
  {
    CorrelatedWalkOptions o;
    o.count = 800;
    o.dimensions = 3;
    o.correlation = 0.6;
    o.max_delta = 3.0;
    o.seed = 6;
    signals.push_back({"walk_3d", *GenerateCorrelatedWalk(o)});
  }
  {
    // Non-uniform sampling: filters must not assume a fixed dt.
    Rng rng(7);
    Signal s;
    double t = 0.0;
    double v = 0.0;
    for (int j = 0; j < 1000; ++j) {
      t += rng.Uniform(0.05, 3.0);
      v += rng.Uniform(-2.0, 2.0);
      s.points.push_back(DataPoint::Scalar(t, v));
    }
    signals.push_back({"walk_irregular_dt", std::move(s)});
  }
  return signals;
}

// Every variant with a precision guarantee; the Kalman baseline keeps the
// gating contract but is excluded here as in the paper's figures.
std::vector<FilterSpec> GuaranteedVariants() {
  std::vector<FilterSpec> variants;
  for (FilterSpec& spec : AllFilterVariants()) {
    if (spec.family != "kalman") variants.push_back(std::move(spec));
  }
  return variants;
}

using InvariantParam = std::tuple<FilterSpec, size_t /*signal idx*/,
                                  double /*epsilon scale*/>;

class FilterInvariantTest : public ::testing::TestWithParam<InvariantParam> {
 protected:
  static const std::vector<NamedSignal>& Signals() {
    static const auto* signals = new std::vector<NamedSignal>(TestSignals());
    return *signals;
  }
};

TEST_P(FilterInvariantTest, PrecisionGuaranteeAndChainValidity) {
  const auto [spec, signal_idx, eps_scale] = GetParam();
  const NamedSignal& named = Signals()[signal_idx];
  const size_t d = named.signal.dimensions();

  // ε as a fraction of each dimension's range (the paper's precision-width
  // parameterization); degenerate ranges fall back to an absolute value.
  FilterOptions options;
  options.epsilon.resize(d);
  for (size_t i = 0; i < d; ++i) {
    const double range = named.signal.Range(i);
    options.epsilon[i] = range > 0.0 ? range * eps_scale : eps_scale;
  }

  const auto result = RunFilter(spec, options, named.signal,
                                /*verify_precision=*/false);
  ASSERT_TRUE(result.ok()) << spec.Label() << " on " << named.name
                           << ": " << result.status().ToString();

  // Structural invariants.
  ASSERT_TRUE(ValidateSegmentChain(result->segments).ok())
      << spec.Label() << " on " << named.name;
  ASSERT_FALSE(result->segments.empty());

  // The paper's L-infinity guarantee.
  const auto approx = PiecewiseLinearFunction::Make(result->segments);
  ASSERT_TRUE(approx.ok());
  const Status precision =
      VerifyPrecision(named.signal, *approx, options.epsilon);
  EXPECT_TRUE(precision.ok())
      << spec.Label() << " on " << named.name << " eps_scale "
      << eps_scale << ": " << precision.ToString();

  // Compression is at least 1 recording and at most one recording pair per
  // point (sanity of the cost model).
  EXPECT_GE(result->compression.recordings, 1u);
  EXPECT_LE(result->compression.recordings, 2 * named.signal.size());

  // The average error can never exceed the max error, which in turn obeys
  // the per-dimension epsilon (within numerical slack covered above).
  for (size_t i = 0; i < d; ++i) {
    EXPECT_LE(result->error.avg_error[i], result->error.max_error[i] + 1e-12);
  }
}

std::string InvariantParamName(
    const ::testing::TestParamInfo<InvariantParam>& info) {
  const auto [spec, signal_idx, eps_scale] = info.param;
  std::string name = spec.Label();
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  name += "_sig" + std::to_string(signal_idx);
  name += "_eps";
  // 0.001 -> "0p001"
  std::string eps = std::to_string(eps_scale);
  eps.erase(eps.find_last_not_of('0') + 1);
  for (char& c : eps) {
    if (c == '.') c = 'p';
  }
  name += eps;
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllFiltersAllSignals, FilterInvariantTest,
    ::testing::Combine(::testing::ValuesIn(GuaranteedVariants()),
                       ::testing::Range<size_t>(0, 11),
                       ::testing::Values(0.001, 0.01, 0.05, 0.25)),
    InvariantParamName);

// ---------------------------------------------------------------------------
// Slide-specific equivalences: the three hull strategies are the same
// algorithm and must produce the same approximation.
// ---------------------------------------------------------------------------

class SlideEquivalenceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SlideEquivalenceTest, HullStrategiesProduceIdenticalSegments) {
  const auto& signals = TestSignals();
  const NamedSignal& named = signals[GetParam()];
  const size_t d = named.signal.dimensions();
  FilterOptions options;
  options.epsilon.resize(d);
  for (size_t i = 0; i < d; ++i) {
    const double range = named.signal.Range(i);
    options.epsilon[i] = range > 0.0 ? range * 0.02 : 0.02;
  }

  auto run = [&](SlideHullMode mode) {
    auto filter = SlideFilter::Create(options, mode).value();
    for (const DataPoint& p : named.signal.points) {
      EXPECT_TRUE(filter->Append(p).ok());
    }
    EXPECT_TRUE(filter->Finish().ok());
    return filter->TakeSegments();
  };

  const auto hull_segments = run(SlideHullMode::kConvexHull);
  const auto brute_segments = run(SlideHullMode::kAllPoints);
  const auto binary_segments = run(SlideHullMode::kChainBinary);

  auto expect_same = [&](const std::vector<Segment>& a,
                         const std::vector<Segment>& b, const char* label) {
    ASSERT_EQ(a.size(), b.size()) << label << " on " << named.name;
    for (size_t k = 0; k < a.size(); ++k) {
      EXPECT_NEAR(a[k].t_start, b[k].t_start, 1e-9) << label << " seg " << k;
      EXPECT_NEAR(a[k].t_end, b[k].t_end, 1e-9) << label << " seg " << k;
      EXPECT_EQ(a[k].connected_to_prev, b[k].connected_to_prev)
          << label << " seg " << k;
      for (size_t i = 0; i < d; ++i) {
        EXPECT_NEAR(a[k].x_start[i], b[k].x_start[i], 1e-9)
            << label << " seg " << k;
        EXPECT_NEAR(a[k].x_end[i], b[k].x_end[i], 1e-9)
            << label << " seg " << k;
      }
    }
  };
  expect_same(hull_segments, brute_segments, "hull-vs-brute");
  expect_same(hull_segments, binary_segments, "hull-vs-binary");
}

INSTANTIATE_TEST_SUITE_P(AllSignals, SlideEquivalenceTest,
                         ::testing::Range<size_t>(0, 11));

// ---------------------------------------------------------------------------
// Ordering of compression power on linear-friendly signals (the paper's
// headline claim, tested where it is deterministic).
// ---------------------------------------------------------------------------

TEST(FilterOrderingTest, SwingAndSlideBeatLinearOnSmoothWalks) {
  RandomWalkOptions o;
  o.count = 4000;
  o.decrease_probability = 0.3;
  o.max_delta = 2.0;
  o.seed = 11;
  const Signal signal = *GenerateRandomWalk(o);
  const FilterOptions options = FilterOptions::Scalar(signal.Range(0) * 0.01);

  const auto linear =
      *RunFilter(FilterSpec{.family = "linear"}, options, signal);
  const auto swing =
      *RunFilter(FilterSpec{.family = "swing"}, options, signal);
  const auto slide =
      *RunFilter(FilterSpec{.family = "slide"}, options, signal);

  EXPECT_GT(swing.compression.ratio, linear.compression.ratio);
  EXPECT_GT(slide.compression.ratio, linear.compression.ratio);
  EXPECT_GE(slide.compression.ratio, swing.compression.ratio * 0.95);
}

TEST(FilterOrderingTest, PerfectLineCompressesToOneSegment) {
  const Signal signal = *GenerateLine(1000, 1.0, 0.25);
  const FilterOptions options = FilterOptions::Scalar(0.5);
  for (const char* text :
       {"linear", "linear(mode=disconnected)", "swing", "slide"}) {
    const auto result = *RunFilter(*FilterSpec::Parse(text), options, signal);
    EXPECT_EQ(result.segments.size(), 1u) << text;
    EXPECT_NEAR(result.error.max_error_overall, 0.0, 1e-9) << text;
  }
}

TEST(FilterOrderingTest, ZeroEpsilonStillMergesCollinearRuns) {
  const Signal signal = *GenerateLine(500, -3.0, 1.5);
  const FilterOptions options = FilterOptions::Scalar(0.0);
  for (const char* text : {"linear", "swing", "slide"}) {
    const auto result = *RunFilter(*FilterSpec::Parse(text), options, signal);
    EXPECT_EQ(result.segments.size(), 1u) << text;
    EXPECT_NEAR(result.error.max_error_overall, 0.0, 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Dimensionality sweep through the conformance harness checkers: every
// guaranteed family at d = 1, 4 and 8 (the DimVec inline boundary) across
// an eps sweep, validated by the same CheckStreamInvariants the property
// harness asserts on every randomized scenario.
// ---------------------------------------------------------------------------

using DimSweepParam =
    std::tuple<FilterSpec, size_t /*dims*/, double /*epsilon scale*/>;

class DimSweepInvariantTest : public ::testing::TestWithParam<DimSweepParam> {
};

TEST_P(DimSweepInvariantTest, HarnessCheckersHoldAcrossDimensions) {
  const auto [spec, dims, eps_scale] = GetParam();

  CorrelatedWalkOptions o;
  o.count = 900;
  o.dimensions = dims;
  o.correlation = 0.5;
  o.max_delta = 3.0;
  o.seed = 17 + dims;
  const Signal signal = *GenerateCorrelatedWalk(o);

  harness::ScenarioStream stream;
  stream.key = "sweep";
  stream.spec = spec;
  stream.truth = signal;
  FilterOptions options;
  for (size_t i = 0; i < dims; ++i) {
    const double range = signal.Range(i);
    stream.epsilon.push_back(range > 0.0 ? range * eps_scale : eps_scale);
  }
  options.epsilon = stream.epsilon;

  const auto result =
      RunFilter(spec, options, signal, /*verify_precision=*/false);
  ASSERT_TRUE(result.ok()) << spec.Label() << " d=" << dims << ": "
                           << result.status().ToString();
  const Status checked =
      harness::CheckStreamInvariants(stream, result->segments);
  EXPECT_TRUE(checked.ok())
      << spec.Label() << " d=" << dims << " eps_scale " << eps_scale << ": "
      << checked.message();
}

std::string DimSweepParamName(
    const ::testing::TestParamInfo<DimSweepParam>& info) {
  const auto [spec, dims, eps_scale] = info.param;
  std::string name = spec.Label();
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  name += "_d" + std::to_string(dims);
  std::string eps = std::to_string(eps_scale);
  eps.erase(eps.find_last_not_of('0') + 1);
  for (char& c : eps) {
    if (c == '.') c = 'p';
  }
  return name + "_eps" + eps;
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesByDims, DimSweepInvariantTest,
    ::testing::Combine(::testing::ValuesIn(GuaranteedVariants()),
                       ::testing::Values<size_t>(1, 4, 8),
                       ::testing::Values(0.005, 0.05, 0.2)),
    DimSweepParamName);

// ---------------------------------------------------------------------------
// Mid-stream cuts (the primitive behind the guard's gap handling) keep
// both the chain invariants and the precision contract for every family.
// ---------------------------------------------------------------------------

TEST(FilterCutInvariantTest, MidStreamCutsKeepTheContract) {
  const Signal signal = *GenerateSine(600, 10.0, 150.0);
  for (FilterSpec spec : GuaranteedVariants()) {
    spec.options.epsilon = {signal.Range(0) * 0.05};
    auto filter = MakeFilter(spec).value();
    for (size_t j = 0; j < signal.size(); ++j) {
      // Two cuts, a third of the way in and two thirds in.
      if (j == signal.size() / 3 || j == 2 * signal.size() / 3) {
        ASSERT_TRUE(filter->Cut().ok()) << spec.Label();
      }
      ASSERT_TRUE(filter->Append(signal.points[j]).ok()) << spec.Label();
    }
    ASSERT_TRUE(filter->Finish().ok()) << spec.Label();

    harness::ScenarioStream stream;
    stream.key = "cut";
    stream.spec = spec;
    stream.epsilon = spec.options.epsilon;
    stream.truth = signal;
    const Status checked =
        harness::CheckStreamInvariants(stream, filter->TakeSegments());
    EXPECT_TRUE(checked.ok()) << spec.Label() << ": " << checked.message();
  }
}

}  // namespace
}  // namespace plastream
