// Copyright (c) 2026 The plastream Authors. MIT license.
//
// Unit tests for src/common: Status/Result, RNG, statistics, strings.

#include <cmath>
#include <cstdint>
#include <set>
#include <span>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32c.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/str_util.h"

namespace plastream {
namespace {

// ---------------------------------------------------------------------------
// CRC32C
// ---------------------------------------------------------------------------

std::vector<uint8_t> Bytes(std::string_view s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 / the canonical Castagnoli check value.
  EXPECT_EQ(Crc32c(Bytes("123456789")), 0xE3069283u);
  EXPECT_EQ(Crc32c(Bytes("")), 0x00000000u);
  // iSCSI test pattern: 32 zero bytes.
  EXPECT_EQ(Crc32c(std::vector<uint8_t>(32, 0x00)), 0x8A9136AAu);
  EXPECT_EQ(Crc32c(std::vector<uint8_t>(32, 0xFF)), 0x62A8AB43u);
}

TEST(Crc32cTest, ChainingMatchesOneShot) {
  const auto data = Bytes("the quick brown fox jumps over the lazy dog");
  for (size_t split = 0; split <= data.size(); ++split) {
    const std::span<const uint8_t> head(data.data(), split);
    const std::span<const uint8_t> tail(data.data() + split,
                                        data.size() - split);
    EXPECT_EQ(Crc32c(tail, Crc32c(head)), Crc32c(data)) << split;
  }
}

TEST(Crc32cTest, SingleBitFlipsAlwaysChangeTheChecksum) {
  const auto data = Bytes("plastream wire frame");
  const uint32_t clean = Crc32c(data);
  for (size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto corrupted = data;
      corrupted[i] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_NE(Crc32c(corrupted), clean) << i << ":" << bit;
    }
  }
}

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status st = Status::InvalidArgument("bad epsilon");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad epsilon");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad epsilon");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfOrder,
        StatusCode::kFailedPrecondition, StatusCode::kNotFound,
        StatusCode::kIOError, StatusCode::kCorruption,
        StatusCode::kUnimplemented, StatusCode::kInternal}) {
    EXPECT_FALSE(StatusCodeName(code).empty());
    EXPECT_NE(StatusCodeName(code), "Unknown");
  }
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = [] { return Status::IOError("disk"); };
  auto wrapper = [&]() -> Status {
    PLASTREAM_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kIOError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto make = [](bool ok) -> Result<int> {
    if (ok) return 5;
    return Status::Internal("boom");
  };
  auto add_one = [&](bool ok) -> Result<int> {
    PLASTREAM_ASSIGN_OR_RETURN(const int v, make(ok));
    return v + 1;
  };
  EXPECT_EQ(*add_one(true), 6);
  EXPECT_EQ(add_one(false).status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(3));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 3);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) differing += a.Next() != b.Next();
  EXPECT_GT(differing, 60);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(10);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform(-3.0, 7.5);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.5);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.Uniform(0.0, 2.0));
  EXPECT_NEAR(stats.Mean(), 1.0, 0.01);
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(12);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[rng.UniformInt(10)];
  for (int c : counts) EXPECT_NEAR(c, draws / 10, draws / 100);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / draws, 0.3, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(14);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(15);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.Gaussian());
  EXPECT_NEAR(stats.Mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.StdDev(), 1.0, 0.02);
}

TEST(RngTest, GaussianScaled) {
  Rng rng(16);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.Gaussian(5.0, 2.0));
  EXPECT_NEAR(stats.Mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.StdDev(), 2.0, 0.05);
}

TEST(RngTest, SplitProducesIndependentStreams) {
  Rng parent(17);
  Rng child1 = parent.Split();
  Rng child2 = parent.Split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += child1.Next() == child2.Next();
  EXPECT_LT(same, 4);
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

TEST(KahanSumTest, ExactOnSmallSeries) {
  KahanSum sum;
  for (int i = 1; i <= 100; ++i) sum.Add(i);
  EXPECT_DOUBLE_EQ(sum.Total(), 5050.0);
}

TEST(KahanSumTest, CompensatesTinyIncrements) {
  KahanSum sum;
  sum.Add(1e16);
  for (int i = 0; i < 10000; ++i) sum.Add(1.0);
  sum.Add(-1e16);
  EXPECT_DOUBLE_EQ(sum.Total(), 10000.0);
}

TEST(KahanSumTest, ResetClears) {
  KahanSum sum;
  sum.Add(5.0);
  sum.Reset();
  EXPECT_DOUBLE_EQ(sum.Total(), 0.0);
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(v);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.Variance(), 4.0);
  EXPECT_DOUBLE_EQ(stats.StdDev(), 2.0);
  EXPECT_DOUBLE_EQ(stats.Min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.Range(), 7.0);
}

TEST(RunningStatsTest, EmptyIsSafe) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.Range(), 0.0);
}

TEST(PearsonCorrelationTest, PerfectPositive) {
  const std::vector<double> a{1, 2, 3, 4, 5};
  const std::vector<double> b{2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
}

TEST(PearsonCorrelationTest, PerfectNegative) {
  const std::vector<double> a{1, 2, 3, 4, 5};
  const std::vector<double> b{5, 4, 3, 2, 1};
  EXPECT_NEAR(PearsonCorrelation(a, b), -1.0, 1e-12);
}

TEST(PearsonCorrelationTest, ConstantSeriesYieldsZero) {
  const std::vector<double> a{1, 1, 1, 1};
  const std::vector<double> b{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(a, b), 0.0);
}

TEST(PearsonCorrelationTest, MismatchedSizesYieldZero) {
  const std::vector<double> a{1, 2};
  const std::vector<double> b{1, 2, 3};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(a, b), 0.0);
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

TEST(StrUtilTest, SplitKeepsEmptyFields) {
  const auto parts = SplitString("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StrUtilTest, SplitSingleField) {
  const auto parts = SplitString("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(StrUtilTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace(" \t "), "");
}

TEST(StrUtilTest, ParseDoubleAcceptsValid) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble(" -1e-3 ", &v));
  EXPECT_DOUBLE_EQ(v, -1e-3);
}

TEST(StrUtilTest, ParseDoubleRejectsGarbage) {
  double v = 0.0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("1.5 2.5", &v));
}

TEST(StrUtilTest, FormatDoubleTrimsNoise) {
  EXPECT_EQ(FormatDouble(5.0), "5");
  EXPECT_EQ(FormatDouble(3.16), "3.16");
  EXPECT_EQ(FormatDouble(0.1, 3), "0.1");
}

}  // namespace
}  // namespace plastream
