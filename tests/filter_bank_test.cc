// Copyright (c) 2026 The plastream Authors. MIT license.
//
// Unit tests for FilterBank: lazy per-key filter creation, routing,
// lifecycle, and error propagation.

#include <gtest/gtest.h>

#include "core/filter_registry.h"
#include "stream/filter_bank.h"

namespace plastream {
namespace {

FilterBank::FilterFactory SwingFactory(double eps) {
  return [eps](std::string_view) -> Result<std::unique_ptr<Filter>> {
    FilterSpec spec;
    spec.family = "swing";
    spec.options = FilterOptions::Scalar(eps);
    return MakeFilter(spec);
  };
}

TEST(FilterBankTest, RoutesByKeyAndCreatesLazily) {
  FilterBank bank(SwingFactory(0.5));
  EXPECT_FALSE(bank.Contains("a"));
  ASSERT_TRUE(bank.Append("a", DataPoint::Scalar(0, 1)).ok());
  ASSERT_TRUE(bank.Append("b", DataPoint::Scalar(0, 2)).ok());
  ASSERT_TRUE(bank.Append("a", DataPoint::Scalar(1, 1)).ok());
  EXPECT_TRUE(bank.Contains("a"));
  EXPECT_TRUE(bank.Contains("b"));
  const auto keys = bank.Keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "b");
}

TEST(FilterBankTest, StreamsAreIndependent) {
  FilterBank bank(SwingFactory(0.5));
  // Interleave two streams with conflicting timestamps: each stream has
  // its own monotonicity requirement.
  ASSERT_TRUE(bank.Append("x", DataPoint::Scalar(10, 0)).ok());
  ASSERT_TRUE(bank.Append("y", DataPoint::Scalar(1, 0)).ok());
  ASSERT_TRUE(bank.Append("x", DataPoint::Scalar(11, 0)).ok());
  ASSERT_TRUE(bank.Append("y", DataPoint::Scalar(2, 0)).ok());
  // Regressing within one stream still fails.
  EXPECT_EQ(bank.Append("x", DataPoint::Scalar(5, 0)).code(),
            StatusCode::kOutOfOrder);
  ASSERT_TRUE(bank.FinishAll().ok());
  EXPECT_EQ(bank.TakeSegments("x")->size(), 1u);
  EXPECT_EQ(bank.TakeSegments("y")->size(), 1u);
}

TEST(FilterBankTest, TakeSegmentsUnknownKey) {
  FilterBank bank(SwingFactory(1.0));
  EXPECT_EQ(bank.TakeSegments("nope").status().code(), StatusCode::kNotFound);
}

TEST(FilterBankTest, FactoryErrorsPropagate) {
  FilterBank bank([](std::string_view key) -> Result<std::unique_ptr<Filter>> {
    if (key == "bad") return Status::InvalidArgument("no such stream class");
    return MakeFilter("cache(eps=1)");
  });
  EXPECT_TRUE(bank.Append("good", DataPoint::Scalar(0, 0)).ok());
  EXPECT_EQ(bank.Append("bad", DataPoint::Scalar(0, 0)).code(),
            StatusCode::kInvalidArgument);
  // The failed key was not registered.
  EXPECT_FALSE(bank.Contains("bad"));
}

TEST(FilterBankTest, PerKeyConfiguration) {
  // The factory can give each stream its own precision.
  FilterBank bank([](std::string_view key) -> Result<std::unique_ptr<Filter>> {
    return MakeFilter(key == "coarse" ? "swing(eps=10)" : "swing(eps=0.1)");
  });
  for (int j = 0; j < 50; ++j) {
    const double v = (j % 7) * 1.0;
    ASSERT_TRUE(bank.Append("coarse", DataPoint::Scalar(j, v)).ok());
    ASSERT_TRUE(bank.Append("fine", DataPoint::Scalar(j, v)).ok());
  }
  ASSERT_TRUE(bank.FinishAll().ok());
  const auto coarse = bank.TakeSegments("coarse").value();
  const auto fine = bank.TakeSegments("fine").value();
  EXPECT_LT(coarse.size(), fine.size());
}

TEST(FilterBankTest, StatsAggregateAcrossStreams) {
  FilterBank bank(SwingFactory(0.25));
  for (int j = 0; j < 30; ++j) {
    ASSERT_TRUE(bank.Append("s1", DataPoint::Scalar(j, j % 3)).ok());
    ASSERT_TRUE(bank.Append("s2", DataPoint::Scalar(j, j % 5)).ok());
    ASSERT_TRUE(bank.Append("s3", DataPoint::Scalar(j, 0.0)).ok());
  }
  ASSERT_TRUE(bank.FinishAll().ok());
  const auto stats = bank.Stats();
  EXPECT_EQ(stats.streams, 3u);
  EXPECT_EQ(stats.points, 90u);
  EXPECT_GT(stats.segments, 3u);
  EXPECT_NE(bank.GetFilter("s1"), nullptr);
  EXPECT_EQ(bank.GetFilter("s9"), nullptr);
}

TEST(FilterBankTest, AppendAfterFinishAllFails) {
  FilterBank bank(SwingFactory(1.0));
  ASSERT_TRUE(bank.Append("a", DataPoint::Scalar(0, 0)).ok());
  ASSERT_TRUE(bank.FinishAll().ok());
  ASSERT_TRUE(bank.FinishAll().ok());  // idempotent
  EXPECT_EQ(bank.Append("a", DataPoint::Scalar(1, 0)).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace plastream
