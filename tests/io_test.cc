// Copyright (c) 2026 The plastream Authors. MIT license.
//
// Unit tests for CSV persistence of signals and segments.

#include <sstream>

#include <gtest/gtest.h>

#include "datagen/random_walk.h"
#include "io/csv.h"

namespace plastream {
namespace {

TEST(CsvTest, SignalRoundTripPreservesValuesExactly) {
  RandomWalkOptions o;
  o.count = 200;
  o.max_delta = 3.7;
  o.t0 = 1e9;  // large timestamps must survive the round trip
  o.dt = 0.1;
  const Signal original = *GenerateRandomWalk(o);

  std::stringstream buffer;
  ASSERT_TRUE(WriteSignalCsv(buffer, original).ok());
  const auto restored = ReadSignalCsv(buffer);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->size(), original.size());
  for (size_t j = 0; j < original.size(); ++j) {
    EXPECT_EQ(restored->points[j], original.points[j]) << "row " << j;
  }
}

TEST(CsvTest, MultiDimensionalSignalRoundTrip) {
  Signal s;
  s.points = {DataPoint(0, {1.0, -2.5, 3.25}), DataPoint(1, {4.0, 5.0, 6.0})};
  std::stringstream buffer;
  ASSERT_TRUE(WriteSignalCsv(buffer, s).ok());
  EXPECT_NE(buffer.str().find("t,x1,x2,x3"), std::string::npos);
  const auto restored = ReadSignalCsv(buffer);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->dimensions(), 3u);
  EXPECT_EQ(restored->points[1], s.points[1]);
}

TEST(CsvTest, ReadWithoutHeader) {
  std::stringstream in("0,1.5\n1,2.5\n");
  const auto signal = ReadSignalCsv(in);
  ASSERT_TRUE(signal.ok());
  EXPECT_EQ(signal->size(), 2u);
  EXPECT_DOUBLE_EQ(signal->points[1].x[0], 2.5);
}

TEST(CsvTest, ReadSkipsBlankLines) {
  std::stringstream in("t,x1\n0,1\n\n1,2\n\n");
  const auto signal = ReadSignalCsv(in);
  ASSERT_TRUE(signal.ok());
  EXPECT_EQ(signal->size(), 2u);
}

TEST(CsvTest, ReadRejectsMalformedValue) {
  std::stringstream in("t,x1\n0,abc\n");
  EXPECT_EQ(ReadSignalCsv(in).status().code(), StatusCode::kCorruption);
}

TEST(CsvTest, ReadRejectsInconsistentColumns) {
  std::stringstream in("t,x1\n0,1\n1,2,3\n");
  EXPECT_EQ(ReadSignalCsv(in).status().code(), StatusCode::kCorruption);
}

TEST(CsvTest, ReadRejectsOutOfOrderTime) {
  std::stringstream in("t,x1\n1,1\n0,2\n");
  EXPECT_EQ(ReadSignalCsv(in).status().code(), StatusCode::kOutOfOrder);
}

TEST(CsvTest, SegmentsWriteIncludesConnectivity) {
  Segment a;
  a.t_start = 0;
  a.t_end = 1;
  a.x_start = {0.0};
  a.x_end = {1.0};
  Segment b = a;
  b.t_start = 1;
  b.t_end = 2;
  b.x_start = {1.0};
  b.x_end = {0.0};
  b.connected_to_prev = true;
  std::stringstream buffer;
  ASSERT_TRUE(WriteSegmentsCsv(buffer, {a, b}).ok());
  const std::string text = buffer.str();
  EXPECT_NE(text.find("t_start,t_end,connected,x_start1,x_end1"),
            std::string::npos);
  EXPECT_NE(text.find("\n0,1,0,"), std::string::npos);
  EXPECT_NE(text.find("\n1,2,1,"), std::string::npos);
}

TEST(CsvTest, SegmentsWriteRejectsInvalidChain) {
  Segment bad;
  bad.t_start = 2;
  bad.t_end = 1;
  bad.x_start = {0.0};
  bad.x_end = {0.0};
  std::stringstream buffer;
  EXPECT_EQ(WriteSegmentsCsv(buffer, {bad}).code(), StatusCode::kCorruption);
}

TEST(CsvTest, FileRoundTrip) {
  RandomWalkOptions o;
  o.count = 50;
  const Signal original = *GenerateRandomWalk(o);
  const std::string path = ::testing::TempDir() + "/plastream_io_test.csv";
  ASSERT_TRUE(WriteSignalCsvFile(path, original).ok());
  const auto restored = ReadSignalCsvFile(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), original.size());
}

TEST(CsvTest, MissingFileIsIOError) {
  EXPECT_EQ(ReadSignalCsvFile("/nonexistent/path.csv").status().code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace plastream
